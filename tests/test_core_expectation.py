"""Unit tests for Theorems 1, 2 and 4 (contact-expectation primitives).

The numeric cases are worked out by hand from the formulas in the paper's
appendix so they double as a check of the formulas' implementation.
"""

import pytest

from repro.contacts.history import ContactHistory
from repro.core.expectation import (
    OverduePolicy,
    community_encounter_probability,
    conditional_encounter_probability,
    expected_encounter_value,
    expected_meeting_delay,
    expected_num_encountering_communities,
)


# ------------------------------------------------------------------- Theorem 1
def test_conditional_probability_hand_computed():
    # R = {30, 60, 90, 120}, elapsed = 45 -> M = {60, 90, 120}, m = 3
    # horizon = 50 -> intervals <= 95: {60, 90} -> m_tau = 2 -> P = 2/3
    intervals = [30.0, 60.0, 90.0, 120.0]
    p = conditional_encounter_probability(intervals, elapsed=45.0, horizon=50.0)
    assert p == pytest.approx(2.0 / 3.0)


def test_conditional_probability_extremes():
    intervals = [10.0, 20.0, 30.0]
    # zero horizon -> no interval can end within it
    assert conditional_encounter_probability(intervals, 5.0, 0.0) == 0.0
    # huge horizon -> certain
    assert conditional_encounter_probability(intervals, 5.0, 1e6) == 1.0
    # no history -> 0
    assert conditional_encounter_probability([], 5.0, 100.0) == 0.0


def test_conditional_probability_overdue_policies():
    intervals = [10.0, 20.0, 30.0]
    elapsed = 100.0  # exceeds every recorded interval
    assert conditional_encounter_probability(
        intervals, elapsed, 15.0, OverduePolicy.OPTIMISTIC) == 1.0
    assert conditional_encounter_probability(
        intervals, elapsed, 15.0, OverduePolicy.PESSIMISTIC) == 0.0
    # REFRESH: fraction of the full window within the horizon: {10} of 3
    assert conditional_encounter_probability(
        intervals, elapsed, 15.0, OverduePolicy.REFRESH) == pytest.approx(1.0 / 3.0)


def test_conditional_probability_validation():
    with pytest.raises(ValueError):
        conditional_encounter_probability([10.0], -1.0, 10.0)
    with pytest.raises(ValueError):
        conditional_encounter_probability([10.0], 1.0, -10.0)


def make_history():
    """Node 0 with deterministic histories toward nodes 1, 2 and 3."""
    history = ContactHistory(owner_id=0)
    # node 1: met at 0, 100, 200, 300 -> intervals {100, 100, 100}, t0 = 300
    for t in (0.0, 100.0, 200.0, 300.0):
        history.record_contact(1, t)
    # node 2: met at 0, 400 -> intervals {400}, t0 = 400
    history.record_contact(2, 0.0)
    history.record_contact(2, 400.0)
    # node 3: met once at 350 -> no intervals yet
    history.record_contact(3, 350.0)
    return history


def test_expected_encounter_value_sums_per_peer_probabilities():
    history = make_history()
    # at t=400, horizon 80:
    #  node 1: elapsed 100 > all intervals -> REFRESH: 0 of {100,100,100} <= 80 -> 0
    #  node 2: elapsed 0, {400} <= 80? no -> 0
    #  node 3: no intervals -> 0
    assert expected_encounter_value(history, now=400.0, horizon=80.0) == 0.0
    # at t=450, horizon 60: node 1 overdue (elapsed 150) REFRESH -> 0;
    # node 2: elapsed 50, 400 <= 110? no -> 0
    assert expected_encounter_value(history, now=450.0, horizon=60.0) == 0.0
    # at t=350, horizon 100: node 1 elapsed 50 -> {100,100,100} <= 150 -> 1.0
    # node 2: elapsed -?? 350 > last 400? no: elapsed = max(0, 350-400) -> history
    # clamps to 0 ... but last contact is 400 > now, use now=420 instead below.
    value = expected_encounter_value(history, now=420.0, horizon=100.0)
    # node 1: elapsed 120 -> overdue -> REFRESH: intervals <= 100 -> 3/3 = 1
    # node 2: elapsed 20 -> {400} <= 120? no -> 0
    # node 3: no intervals -> 0
    assert value == pytest.approx(1.0)


def test_expected_encounter_value_peer_filter():
    history = make_history()
    value_all = expected_encounter_value(history, now=420.0, horizon=100.0)
    value_only_2 = expected_encounter_value(history, now=420.0, horizon=100.0,
                                            peer_filter=lambda peer: peer == 2)
    assert value_only_2 <= value_all
    assert value_only_2 == 0.0


def test_eev_grows_with_horizon():
    history = make_history()
    horizons = [0.0, 50.0, 150.0, 500.0]
    values = [expected_encounter_value(history, now=310.0, horizon=h) for h in horizons]
    assert values == sorted(values)
    assert values[-1] <= len(history.peers())


# ------------------------------------------------------------------- Theorem 2
def test_expected_meeting_delay_hand_computed():
    # M = {60, 90, 120} after conditioning on elapsed 45
    # EMD = mean(M) - elapsed = 90 - 45 = 45
    intervals = [30.0, 60.0, 90.0, 120.0]
    assert expected_meeting_delay(intervals, elapsed=45.0) == pytest.approx(45.0)


def test_expected_meeting_delay_decreases_as_time_passes():
    intervals = [100.0, 200.0, 300.0]
    delays = [expected_meeting_delay(intervals, e) for e in (0.0, 50.0, 90.0)]
    assert delays[0] > delays[1] > delays[2]


def test_expected_meeting_delay_periodic_example_from_paper():
    # the paper's motivating example: two nodes meet every dt; at t0 + dt/2
    # the expected delay should be dt/2, not dt
    dt = 100.0
    intervals = [dt] * 10
    assert expected_meeting_delay(intervals, elapsed=dt / 2) == pytest.approx(dt / 2)


def test_expected_meeting_delay_overdue_policies():
    intervals = [10.0, 20.0]
    assert expected_meeting_delay(intervals, 100.0, OverduePolicy.REFRESH) == 15.0
    assert expected_meeting_delay(intervals, 100.0, OverduePolicy.OPTIMISTIC) == 0.0
    assert expected_meeting_delay(intervals, 100.0, OverduePolicy.PESSIMISTIC) is None
    assert expected_meeting_delay([], 1.0) is None
    with pytest.raises(ValueError):
        expected_meeting_delay(intervals, -1.0)


# ------------------------------------------------------------------- Theorem 4
def test_community_probability_one_minus_product():
    history = ContactHistory(owner_id=0)
    # two members, each met every 100 s, last contact at t=1000
    for member in (1, 2):
        for t in (800.0, 900.0, 1000.0):
            history.record_contact(member, t)
    # at t=1050 with horizon 60: per-member P = 1 (intervals 100 <= 110)
    p = community_encounter_probability(history, 1050.0, 60.0, members=[1, 2])
    assert p == pytest.approx(1.0)
    # with horizon 0, each P = 0
    assert community_encounter_probability(history, 1050.0, 0.0, [1, 2]) == 0.0


def test_community_probability_partial_members():
    history = ContactHistory(owner_id=0)
    for t in (0.0, 100.0, 200.0):
        history.record_contact(1, t)
    # member 2 never met: contributes nothing; owner excluded automatically
    p_single = community_encounter_probability(history, 250.0, 60.0, [1])
    p_with_unknown = community_encounter_probability(history, 250.0, 60.0, [0, 1, 2])
    assert p_single == pytest.approx(p_with_unknown)
    assert 0.0 <= p_single <= 1.0


def test_enec_excludes_own_community_and_sums_over_rest():
    history = ContactHistory(owner_id=0)
    for member, times in {1: (0.0, 100.0, 200.0), 3: (0.0, 150.0, 300.0)}.items():
        for t in times:
            history.record_contact(member, t)
    communities = {0: [0, 5], 1: [1, 2], 2: [3, 4]}
    enec = expected_num_encountering_communities(
        history, now=320.0, horizon=200.0, communities=communities, own_community=0)
    p1 = community_encounter_probability(history, 320.0, 200.0, [1, 2])
    p2 = community_encounter_probability(history, 320.0, 200.0, [3, 4])
    assert enec == pytest.approx(p1 + p2)
    assert 0.0 <= enec <= 2.0
    # including the own community raises the count
    enec_all = expected_num_encountering_communities(
        history, now=320.0, horizon=200.0, communities=communities, own_community=None)
    assert enec_all >= enec
