"""Results store tests: identity hashing, round-trips, dedupe, concurrency.

The store's contract has three load-bearing pieces, each pinned here:

* **identity** — ``ScenarioConfig.config_hash()`` is stable across field
  ordering and explicitly-passed defaults, ignores ``name``/``seed`` (those
  are separate key columns) and changes for any behavioural field;
* **byte-identity** — a report served from the store is exactly the report
  that was simulated (canonical ``as_dict()`` form), so a resumed sweep
  merges into byte-identical results;
* **append-only dedupe** — the first write of a key wins; re-running a
  sweep against a populated store computes zero cells, including with
  several writers racing on one database file.
"""

import json
import threading

import pytest

from repro.checkpoint import save_checkpoint_bytes
from repro.experiments.runner import run_averaged, run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import sweep
from repro.metrics.reports import SimulationReport
from repro.store import (
    ResultsStore,
    StoreError,
    canonical_report_json,
    open_store,
)


def tiny_config(**overrides):
    base = ScenarioConfig.bench_scale(protocol="spray-and-wait", num_nodes=10,
                                      sim_time=250.0, name="store-tiny")
    return base.with_overrides(**overrides) if overrides else base


# ------------------------------------------------------------------ identity
def test_config_hash_stable_across_explicit_defaults():
    base = tiny_config()
    defaults = ScenarioConfig()
    explicit = base.with_overrides(min_speed=defaults.min_speed,
                                   detector=defaults.detector)
    assert base.config_hash() == explicit.config_hash()


def test_config_hash_ignores_name_and_seed():
    base = tiny_config()
    assert base.with_overrides(seed=99).config_hash() == base.config_hash()
    assert base.with_overrides(name="other").config_hash() == base.config_hash()
    # ... because both are separate components of the identity key
    assert base.identity_key() != base.with_overrides(seed=99).identity_key()


def test_config_hash_changes_with_behavioural_fields():
    base = tiny_config()
    assert base.with_overrides(protocol="eer").config_hash() != base.config_hash()
    assert base.with_overrides(sim_time=500.0).config_hash() != base.config_hash()
    assert (base.with_overrides(router_params={"alpha": 0.4}).config_hash()
            != base.config_hash())


def test_identity_payload_drops_default_valued_fields():
    payload = tiny_config().identity_payload()
    assert "name" not in payload and "seed" not in payload
    defaults = ScenarioConfig()
    # a field left at its default never appears: adding config fields later
    # must not invalidate stores/manifests written before the field existed
    assert tiny_config().min_speed == defaults.min_speed
    assert "min_speed" not in payload
    assert payload["protocol"] == "spray-and-wait"
    assert list(payload) == sorted(payload)


def test_identity_payload_is_json_round_trippable():
    payload = tiny_config(message_interval=(25.0, 35.0)).identity_payload()
    assert json.loads(json.dumps(payload)) == payload


# ---------------------------------------------------------------- round trips
def test_report_from_dict_round_trips_exactly():
    report = run_scenario(tiny_config())
    payload = json.loads(canonical_report_json(report))
    again = SimulationReport.from_dict(payload)
    assert canonical_report_json(again) == canonical_report_json(report)


def test_report_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError):
        SimulationReport.from_dict({"no_such_metric": 1.0})


def test_store_round_trip_and_provenance(tmp_path):
    config = tiny_config()
    report = run_scenario(config)
    path = str(tmp_path / "results.sqlite")
    with open_store(path) as store:
        assert store.put(config, report, wall_seconds=1.5)
        assert config in store
        assert len(store) == 1
    with open_store(path) as store:  # fresh connection sees the same row
        served = store.get(config)
        assert canonical_report_json(served) == canonical_report_json(report)
        row = store.provenance(config)
        assert row["wall_seconds"] == 1.5
        assert row["repro_version"]
        assert row["created_utc"]
        assert store.keys() == [config.identity_key()]


def test_store_append_only_first_write_wins(tmp_path):
    config = tiny_config()
    report = run_scenario(config)
    other = run_scenario(config.with_overrides(sim_time=300.0))
    with open_store(str(tmp_path / "r.sqlite")) as store:
        assert store.put(config, report)
        assert not store.put(config, other)  # same key: ignored, not replaced
        assert canonical_report_json(store.get(config)) == \
            canonical_report_json(report)
        assert len(store) == 1


def test_store_rejects_unknown_schema_version(tmp_path):
    path = str(tmp_path / "r.sqlite")
    with open_store(path) as store:
        store._connection.execute(
            "UPDATE store_meta SET value = '999' WHERE key = 'schema_version'")
        store._connection.commit()
    with pytest.raises(StoreError):
        open_store(path)


# --------------------------------------------------------------------- dedupe
def test_run_averaged_with_store_computes_nothing_second_time(tmp_path):
    config = tiny_config()
    events = []
    with open_store(str(tmp_path / "r.sqlite")) as store:
        first = run_averaged(config, seeds=[1, 2], store=store)
        assert len(store) == 2
        second = run_averaged(config, seeds=[1, 2], store=store,
                              progress=events.append)
        assert len(store) == 2
    assert [event["status"] for event in events] == ["cached", "cached"]
    assert second.as_dict() == first.as_dict()
    assert second.identity_keys() == first.identity_keys()


def test_sweep_with_store_resumes_byte_identically(tmp_path):
    base = tiny_config(protocol="eer")
    grid = {"num_nodes": [8, 12], "router.alpha": [0.1, 0.5]}
    straight = sweep(base, grid, seeds=[1])

    # interrupted first pass: only some cells made it into the store
    with open_store(str(tmp_path / "r.sqlite")) as store:
        partial = sweep(base, {"num_nodes": [8], "router.alpha": [0.1, 0.5]},
                        seeds=[1], store=store)
        assert len(store) == 2
        events = []
        resumed = sweep(base, grid, seeds=[1], store=store,
                        progress=events.append)
        statuses = [event["status"] for event in events]
        assert statuses.count("cached") == 2
        assert statuses.count("computed") == 2
    del partial
    merged = json.dumps([point.as_dict() for point in resumed], sort_keys=True)
    fresh = json.dumps([point.as_dict() for point in straight], sort_keys=True)
    assert merged == fresh


def test_concurrent_writers_one_row_per_key(tmp_path):
    config = tiny_config()
    reports = {seed: run_scenario(config.with_overrides(seed=seed))
               for seed in (1, 2, 3, 4)}
    path = str(tmp_path / "r.sqlite")
    errors = []

    def writer(seed):
        try:
            with open_store(path) as store:  # own connection per thread
                for _ in range(5):
                    store.put(config.with_overrides(seed=seed), reports[seed])
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(seed,))
               for seed in reports for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    with open_store(path) as store:
        assert len(store) == 4
        for seed, report in reports.items():
            served = store.get(config.with_overrides(seed=seed))
            assert canonical_report_json(served) == \
                canonical_report_json(report)


def test_store_summary_counts(tmp_path):
    config = tiny_config()
    with open_store(str(tmp_path / "r.sqlite")) as store:
        run_averaged(config, seeds=[1, 2], store=store)
        run_averaged(config.with_overrides(protocol="epidemic"), seeds=[1],
                     store=store)
        summary = store.summary()
    assert summary["results"] == 3
    cells = {(cell["scenario"], cell["protocol"]): cell["runs"]
             for cell in summary["cells"]}
    assert cells == {("store-tiny", "spray-and-wait"): 2,
                     ("store-tiny", "epidemic"): 1}


def test_in_memory_store_supported():
    config = tiny_config()
    report = run_scenario(config)
    store = ResultsStore(":memory:")
    try:
        assert store.put(config, report)
        assert store.get(config) is not None
    finally:
        store.close()


# --------------------------------------------------------- checkpoint linkage
def test_checkpoint_manifest_records_config_hash():
    import io
    import zipfile

    from repro.experiments.builder import build_scenario

    config = tiny_config(sim_time=50.0)
    built = build_scenario(config)
    built.simulator.run(until=10.0)
    blob = save_checkpoint_bytes(built.world, config=config)
    built.world.stop()
    with zipfile.ZipFile(io.BytesIO(blob)) as archive:
        manifest = json.loads(archive.read("MANIFEST.json"))
    assert manifest["config_hash"] == config.config_hash()
