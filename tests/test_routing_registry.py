"""Unit tests for the router registry."""

import pytest

from repro.core.cr import CommunityRouter
from repro.core.eer import EERRouter
from repro.routing.base import Router
from repro.routing.registry import (
    available_routers,
    create_router,
    register_router,
)


def test_all_builtin_protocols_instantiate():
    for name in available_routers():
        router = create_router(name)
        assert isinstance(router, Router)
        assert router.node is None


def test_papers_protocols_resolve_to_core_classes():
    assert isinstance(create_router("eer"), EERRouter)
    assert isinstance(create_router("cr"), CommunityRouter)


def test_parameters_forwarded_to_factory():
    router = create_router("eer", alpha=0.5, window_size=7)
    assert router.alpha == 0.5
    assert router.window_size == 7
    snw = create_router("spray-and-wait", binary=False)
    assert snw.binary is False


def test_unknown_router_raises_with_known_names():
    with pytest.raises(KeyError) as excinfo:
        create_router("does-not-exist")
    assert "epidemic" in str(excinfo.value)


def test_register_custom_router_overrides_and_lists():
    class MyRouter(Router):
        name = "custom-test"

    register_router("custom-test", MyRouter)
    assert "custom-test" in available_routers()
    assert isinstance(create_router("custom-test"), MyRouter)


def test_register_requires_callable():
    with pytest.raises(TypeError):
        register_router("bad", "not callable")
