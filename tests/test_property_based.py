"""Property-based tests (hypothesis) on the core invariants.

These cover the mathematical building blocks of the paper (Theorems 1, 2 and
4, the splitting rule, the MEMD Dijkstra) and the substrate data structures
whose invariants everything else relies on (buffers, paths, MI exchange).
"""


import numpy as np
from hypothesis import given, settings, strategies as st

from repro.contacts.history import ContactHistory
from repro.contacts.memd import dijkstra_delays, dijkstra_delays_reference
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import (
    OverduePolicy,
    community_encounter_probability,
    conditional_encounter_probability,
    expected_encounter_value,
    expected_meeting_delay,
    expected_num_encountering_communities,
)
from repro.core.replication import split_replicas
from repro.mobility.path import Path
from repro.net.buffer import BufferFullError, DropPolicy, MessageBuffer
from repro.net.message import Message


intervals_strategy = st.lists(
    st.floats(min_value=0.1, max_value=10_000.0, allow_nan=False), min_size=0, max_size=30)
elapsed_strategy = st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False)
horizon_strategy = st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False)
policy_strategy = st.sampled_from(list(OverduePolicy))


# ----------------------------------------------------------------- Theorem 1
@given(intervals_strategy, elapsed_strategy, horizon_strategy, policy_strategy)
def test_conditional_probability_is_a_probability(intervals, elapsed, horizon, policy):
    p = conditional_encounter_probability(intervals, elapsed, horizon, policy)
    assert 0.0 <= p <= 1.0


@given(intervals_strategy, elapsed_strategy, policy_strategy,
       st.floats(min_value=0.0, max_value=5000.0),
       st.floats(min_value=0.0, max_value=5000.0))
def test_conditional_probability_monotone_in_horizon(intervals, elapsed, policy, h1, h2):
    low, high = sorted((h1, h2))
    p_low = conditional_encounter_probability(intervals, elapsed, low, policy)
    p_high = conditional_encounter_probability(intervals, elapsed, high, policy)
    assert p_low <= p_high + 1e-12


@given(st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=20),
       st.floats(min_value=0.0, max_value=500.0))
def test_probability_one_when_horizon_covers_all_intervals(intervals, elapsed):
    horizon = max(intervals) + elapsed + 1.0
    p = conditional_encounter_probability(intervals, elapsed, horizon,
                                          OverduePolicy.REFRESH)
    assert p == 1.0


# ----------------------------------------------------------------- Theorem 2
@given(st.lists(st.floats(min_value=0.5, max_value=5000.0), min_size=1, max_size=30),
       elapsed_strategy)
def test_expected_meeting_delay_non_negative_and_bounded(intervals, elapsed):
    emd = expected_meeting_delay(intervals, elapsed, OverduePolicy.REFRESH)
    assert emd is not None
    assert emd >= -1e-9
    # the conditional expectation never exceeds the largest possible residual
    assert emd <= max(intervals) + 1e-9


# ----------------------------------------------------------------- Theorem 4 / EEV
@st.composite
def history_strategy(draw):
    history = ContactHistory(owner_id=0, window_size=draw(st.integers(2, 15)))
    num_peers = draw(st.integers(1, 6))
    for peer in range(1, num_peers + 1):
        times = draw(st.lists(st.floats(min_value=0.0, max_value=5000.0),
                              min_size=1, max_size=10))
        for t in sorted(times):
            try:
                history.record_contact(peer, t)
            except ValueError:
                pass
    return history


@given(history_strategy(), st.floats(min_value=5000.0, max_value=8000.0),
       horizon_strategy, policy_strategy)
@settings(max_examples=60)
def test_eev_bounded_by_number_of_peers(history, now, horizon, policy):
    value = expected_encounter_value(history, now, horizon, policy)
    assert 0.0 <= value <= len(history.peers()) + 1e-9


@given(history_strategy(), st.floats(min_value=5000.0, max_value=8000.0),
       horizon_strategy, policy_strategy, st.integers(2, 4))
@settings(max_examples=60)
def test_enec_bounded_by_number_of_other_communities(history, now, horizon, policy,
                                                     num_communities):
    peers = history.peers() or [1]
    communities = {c: [p for i, p in enumerate(peers) if i % num_communities == c]
                   for c in range(num_communities)}
    enec = expected_num_encountering_communities(
        history, now, horizon, communities, own_community=0, overdue_policy=policy)
    assert 0.0 <= enec <= num_communities - 1 + 1e-9
    for community, members in communities.items():
        p = community_encounter_probability(history, now, horizon, members, policy)
        assert 0.0 <= p <= 1.0


# ------------------------------------------------------------------ splitting
@given(st.integers(min_value=1, max_value=1000),
       st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       st.booleans())
def test_split_replicas_invariants(total, w_self, w_peer, keep_one):
    kept, passed = split_replicas(total, w_self, w_peer, keep_at_least_one=keep_one)
    assert kept + passed == total
    assert passed >= 0
    assert kept >= (1 if keep_one else 0)
    if w_self + w_peer > 0:
        exact_share = total * w_peer / (w_self + w_peer)
        assert passed <= exact_share + 1e-9 or passed == total - 1


# -------------------------------------------------------------------- Dijkstra
@st.composite
def delay_matrix_strategy(draw):
    n = draw(st.integers(2, 12))
    values = draw(st.lists(st.floats(min_value=0.1, max_value=1000.0),
                           min_size=n * n, max_size=n * n))
    md = np.array(values).reshape(n, n)
    mask = draw(st.lists(st.booleans(), min_size=n * n, max_size=n * n))
    md[np.array(mask).reshape(n, n)] = np.inf
    np.fill_diagonal(md, 0.0)
    source = draw(st.integers(0, n - 1))
    return md, source


@given(delay_matrix_strategy())
@settings(max_examples=60)
def test_dijkstra_matches_reference_and_triangle_inequality(case):
    md, source = case
    fast = dijkstra_delays(md, source)
    slow = dijkstra_delays_reference(md, source)
    assert np.allclose(fast, slow)
    assert fast[source] == 0.0
    # shortest paths never exceed the direct edge
    for v in range(md.shape[0]):
        if np.isfinite(md[source, v]):
            assert fast[v] <= md[source, v] + 1e-6


# -------------------------------------------------------------------- buffers
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=400),
                          st.floats(min_value=0.0, max_value=100.0)),
                min_size=1, max_size=40),
       st.sampled_from([DropPolicy.OLDEST_RECEIVED, DropPolicy.SHORTEST_TTL,
                        DropPolicy.LARGEST]))
def test_buffer_occupancy_never_exceeds_capacity(items, policy):
    buffer = MessageBuffer(capacity=1000, drop_policy=policy)
    for index, (size, received) in enumerate(items):
        message = Message(f"M{index}", 0, 1, size, creation_time=0.0, ttl=1000.0)
        message.received_time = received
        try:
            buffer.add(message)
        except BufferFullError:
            pass
        assert 0 <= buffer.occupancy <= 1000
        assert buffer.occupancy == sum(m.size for m in buffer.messages())


# ----------------------------------------------------------------------- paths
@given(st.lists(st.tuples(st.floats(min_value=-1000, max_value=1000),
                          st.floats(min_value=-1000, max_value=1000)),
                min_size=1, max_size=8),
       st.floats(min_value=0.1, max_value=30.0),
       st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=20))
def test_path_advance_reaches_end_and_never_overshoots(waypoints, speed, steps):
    path = Path(waypoints, speed=speed)
    total_time = path.duration()
    elapsed = 0.0
    for dt in steps:
        position, leftover = path.advance(dt)
        elapsed += dt
        assert leftover <= dt + 1e-9
        assert np.all(np.isfinite(position))
    if elapsed >= total_time + 1e-6:
        assert path.done
        assert np.allclose(path.position, np.asarray(waypoints[-1], dtype=float),
                           atol=1e-6)


# -------------------------------------------------------------------- MI merge
@given(st.integers(2, 10), st.data())
@settings(max_examples=40)
def test_mi_merge_is_idempotent_and_keeps_freshest(n, data):
    a = MeetingIntervalMatrix(n, owner_id=0)
    b = MeetingIntervalMatrix(n, owner_id=1 % n)
    for matrix in (a, b):
        peers = data.draw(st.lists(st.integers(0, n - 1), max_size=n, unique=True))
        updates = {p: data.draw(st.floats(min_value=1.0, max_value=1000.0))
                   for p in peers if p != matrix.owner_id}
        if updates:
            matrix.update_own_row(updates, now=data.draw(
                st.floats(min_value=0.0, max_value=100.0)))
    a.merge_from(b)
    again = a.merge_from(b)
    assert again == 0  # merging the same matrix twice copies nothing new
    # after a mutual merge both know at least as much as before
    before_known = b.known_rows()
    b.merge_from(a)
    assert b.known_rows() >= before_known
