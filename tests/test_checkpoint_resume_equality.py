"""The resume-equality contract, exercised across the whole feature matrix.

``assert_resume_equality`` runs a scenario straight through, then replays it
with a full serialize → tear down → deserialize → resume cycle at each
checkpoint time and requires the canonical report bytes (metrics, counters,
per-protocol extras — everything but wall-clock timings) to match exactly.
Covered here: the four headline protocols, every admissible tick boundary of
a short run, the historical flat_tick=False tick, columnar and disabled
collectors, the sharded detector on the shared-memory process pool, file
trace replay, and online community detection (CR with the Newman tracker).
"""

import pytest

from repro.experiments.catalog import make_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.testing import admissible_checkpoint_times, assert_resume_equality


def bench(protocol, **overrides):
    """A small-but-busy bus scenario: buffers churn, every phase runs."""
    return ScenarioConfig.bench_scale(
        protocol=protocol, num_nodes=16, seed=3, sim_time=360.0, **overrides)


@pytest.mark.parametrize("protocol", ["direct", "prophet", "eer", "cr"])
def test_resume_equality_headline_protocols(protocol):
    assert_resume_equality(bench(protocol), checkpoint_times=[120.0, 250.0])


def test_resume_equality_at_every_admissible_boundary():
    """Checkpoint/restore is invisible at *any* tick boundary, not just the
    convenient ones (strided to keep the suite fast; stride 7 is coprime to
    every periodic structure in the scenario)."""
    config = ScenarioConfig.bench_scale(
        protocol="epidemic", num_nodes=10, seed=5, sim_time=60.0,
        mobility="random_waypoint")
    times = admissible_checkpoint_times(config, stride=7)
    assert times[0] == config.update_interval  # the earliest boundary
    assert times[-1] > config.sim_time - 7 * config.update_interval
    assert_resume_equality(config, checkpoint_times=times)


def test_resume_equality_historical_flat_tick_off():
    assert_resume_equality(
        bench("epidemic", flat_tick=False, router_skiplist=False,
              router_soa=False, transfer_engine=False),
        checkpoint_times=[180.0])


@pytest.mark.parametrize("record_mode", ["columnar", "off"])
def test_resume_equality_collector_modes(record_mode):
    assert_resume_equality(bench("eer", record_mode=record_mode),
                           checkpoint_times=[180.0])


def test_resume_equality_sharded_process_pool():
    """A snapshot of a world whose detector fans over a process pool restores
    in-process (the pool and shared-memory segment are dropped on save and
    lazily recreated) without perturbing the rebuild schedule."""
    config = ScenarioConfig.bench_scale(
        protocol="epidemic", num_nodes=40, seed=2, sim_time=200.0,
        mobility="random_waypoint", detector="sharded",
        world_workers=2, world_workers_mode="process")
    assert_resume_equality(config, checkpoint_times=[90.0])


def test_resume_equality_trace_replay():
    config = make_scenario("trace-csv", {"sim_time": 400.0, "seed": 7})
    assert_resume_equality(config, checkpoint_times=[150.0, 380.0])


def test_resume_equality_online_community_detection():
    """CR with the Newman tracker: detected communities, the MEMD cache and
    the tracker's incremental state all travel through the snapshot."""
    config = make_scenario("community-detect",
                           {"protocol": "cr-newman", "sim_time": 600.0})
    assert_resume_equality(config, checkpoint_times=[300.0])
