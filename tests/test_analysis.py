"""Unit tests for the analysis helpers."""

import math

import pytest

from repro.analysis.render import figure_to_csv, figure_to_json, render_ascii_chart
from repro.analysis.series import (
    crossover_points,
    is_monotonic,
    rank_series,
    relative_factor,
    series_to_arrays,
)
from repro.analysis.stats import mean_confidence_interval, summarize
from repro.experiments.figures import FigureResult


# ---------------------------------------------------------------------- stats
def test_mean_confidence_interval():
    mean, half = mean_confidence_interval([10.0, 12.0, 11.0, 13.0])
    assert mean == pytest.approx(11.5)
    assert half > 0
    mean_single, half_single = mean_confidence_interval([5.0])
    assert mean_single == 5.0 and half_single == 0.0
    nan_mean, _ = mean_confidence_interval([])
    assert math.isnan(nan_mean)
    with pytest.raises(ValueError):
        mean_confidence_interval([1.0], confidence=1.5)


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0, 4.0, float("inf")])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0 and summary.maximum == 4.0
    assert summary.median == pytest.approx(2.5)
    assert summary.as_dict()["count"] == 4
    empty = summarize([])
    assert empty.count == 0 and math.isnan(empty.mean)


# --------------------------------------------------------------------- series
def test_series_to_arrays_sorts_by_x():
    xs, ys = series_to_arrays([(3, 30.0), (1, 10.0), (2, 20.0)])
    assert xs.tolist() == [1.0, 2.0, 3.0]
    assert ys.tolist() == [10.0, 20.0, 30.0]
    empty_x, empty_y = series_to_arrays([])
    assert empty_x.size == 0 and empty_y.size == 0


def test_is_monotonic_with_tolerance():
    rising = [(1, 0.1), (2, 0.2), (3, 0.3)]
    noisy = [(1, 0.1), (2, 0.09), (3, 0.3)]
    assert is_monotonic(rising, increasing=True)
    assert not is_monotonic(noisy, increasing=True)
    assert is_monotonic(noisy, increasing=True, tolerance=0.02)
    assert is_monotonic(list(reversed(rising)), increasing=True)  # re-sorted by x
    assert is_monotonic([(1, 3.0), (2, 2.0)], increasing=False)


def test_crossover_points():
    a = [(0, 0.0), (1, 1.0), (2, 2.0)]
    b = [(0, 2.0), (1, 1.5), (2, 1.0)]
    crossings = crossover_points(a, b)
    assert len(crossings) == 1
    assert 1.0 < crossings[0] < 2.0
    assert crossover_points(a, a) != []  # identical series touch everywhere


def test_relative_factor_and_ranking():
    a = [(1, 2.0), (2, 4.0)]
    b = [(1, 1.0), (2, 2.0)]
    assert relative_factor(a, b) == pytest.approx(2.0)
    assert math.isnan(relative_factor(a, []))
    order = rank_series({"low": b, "high": a}, higher_is_better=True)
    assert order == ["high", "low"]
    assert rank_series({"low": b, "high": a}, higher_is_better=False) == ["low", "high"]


# --------------------------------------------------------------------- render
def make_figure():
    figure = FigureResult("figX", "demo", "num_nodes")
    for x, y in [(40, 0.5), (80, 0.6), (120, 0.7)]:
        figure.add_point("delivery_ratio", "eer", x, y)
        figure.add_point("delivery_ratio", "ebr", x, y - 0.2)
    return figure


def test_render_ascii_chart():
    figure = make_figure()
    chart = render_ascii_chart(figure.metrics["delivery_ratio"], title="demo chart")
    assert "demo chart" in chart
    assert "o=eer" in chart and "x=ebr" in chart
    assert render_ascii_chart({}) == "(no data)"


def test_figure_to_json_and_csv(tmp_path):
    figure = make_figure()
    json_path = tmp_path / "fig.json"
    payload = figure_to_json(figure, path=str(json_path))
    assert json_path.exists()
    assert '"figure_id": "figX"' in payload
    csv_path = tmp_path / "fig.csv"
    text = figure_to_csv(figure, "delivery_ratio", path=str(csv_path))
    assert csv_path.exists()
    lines = text.strip().splitlines()
    assert lines[0] == "num_nodes,eer,ebr"
    assert lines[1].startswith("40,")
