"""Unit tests for the statistics collector."""

from repro.metrics.collector import StatsCollector
from repro.net.message import Message


def msg(mid="M1", src=0, dst=1, created=0.0):
    return Message(mid, src, dst, 100, created, 1000.0, copies=5)


def test_delivery_ratio_counts_unique_deliveries():
    stats = StatsCollector()
    for i in range(4):
        stats.message_created(msg(f"M{i}"))
    delivered = msg("M0")
    assert stats.message_delivered(delivered, time=50.0) is True
    assert stats.message_delivered(delivered, time=60.0) is False  # duplicate
    assert stats.delivered == 1
    assert stats.duplicate_deliveries == 1
    assert stats.delivery_ratio == 0.25


def test_latency_and_hops_average_over_first_deliveries():
    stats = StatsCollector()
    a = msg("A", created=0.0)
    b = msg("B", created=100.0)
    stats.message_created(a)
    stats.message_created(b)
    a_copy = a.replicate(1, receiver=1, now=30.0)
    stats.message_delivered(a_copy, time=30.0)
    b_copy = b.replicate(1, receiver=1, now=170.0)
    b_copy.add_hop(2)
    stats.message_delivered(b_copy, time=170.0)
    assert stats.average_latency == 50.0  # (30 + 70) / 2
    assert stats.average_hop_count == 1.5  # (1 + 2) / 2


def test_goodput_and_overhead():
    stats = StatsCollector()
    stats.message_created(msg("A"))
    for _ in range(4):
        stats.message_relayed(msg("A"), 0, 1, 10.0, copies=1, final_delivery=False)
    stats.message_delivered(msg("A"), time=20.0)
    assert stats.relayed == 4
    assert stats.goodput == 0.25
    assert stats.overhead_ratio == 3.0


def test_zero_denominators():
    stats = StatsCollector()
    assert stats.delivery_ratio == 0.0
    assert stats.average_latency == 0.0
    assert stats.goodput == 0.0
    assert stats.overhead_ratio == 0.0
    stats.message_relayed(msg(), 0, 1, 1.0, 1, False)
    assert stats.overhead_ratio == float("inf")


def test_drop_accounting_by_reason():
    stats = StatsCollector()
    stats.message_dropped(msg("A"), node=3, time=1.0, reason="expired")
    stats.message_dropped(msg("B"), node=3, time=2.0, reason="buffer")
    stats.message_dropped(msg("C"), node=4, time=3.0, reason="buffer")
    assert stats.dropped == 3
    assert stats.expired == 1
    assert stats.per_node_drops() == {3: 2, 4: 1}


def test_contact_records_are_closed_on_contact_down():
    stats = StatsCollector()
    stats.contact_up(2, 5, time=10.0)
    stats.contact_down(5, 2, time=35.0)
    assert stats.contacts == 1
    [record] = stats.contact_records
    assert record.node_a == 2 and record.node_b == 5
    assert record.duration == 25.0


def test_control_overhead_accumulates():
    stats = StatsCollector()
    stats.control_exchange(rows=3, size_bytes=120)
    stats.control_exchange(rows=2)
    assert stats.control_exchanges == 2
    assert stats.control_rows_exchanged == 5
    assert stats.control_bytes_exchanged == 120


def test_keep_records_flag_disables_event_lists():
    stats = StatsCollector(keep_records=False)
    stats.message_created(msg("A"))
    stats.message_relayed(msg("A"), 0, 1, 1.0, 1, False)
    stats.message_delivered(msg("A"), 2.0)
    stats.message_dropped(msg("A"), 0, 3.0, "expired")
    assert stats.created == 1 and stats.delivered == 1
    assert stats.created_records == []
    assert stats.relayed_records == []
    assert stats.delivered_records == []
    assert stats.dropped_records == []


def test_delivery_time_lookup():
    stats = StatsCollector()
    stats.message_created(msg("A"))
    assert not stats.is_delivered("A")
    stats.message_delivered(msg("A"), time=42.0)
    assert stats.is_delivered("A")
    assert stats.delivery_time("A") == 42.0
    assert stats.delivery_time("B") is None


def test_community_detection_overhead_accumulates():
    stats = StatsCollector()
    assert stats.community_detections == 0
    assert stats.community_detection_seconds == 0.0
    assert stats.community_reassignments == 0
    stats.community_detection(seconds=0.25, reassigned=4)
    stats.community_detection(seconds=0.5)
    assert stats.community_detections == 2
    assert stats.community_detection_seconds == 0.75
    assert stats.community_reassignments == 4
