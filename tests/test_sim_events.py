"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import CallbackEvent, Event, EventQueue


class RecordingEvent(Event):
    """Test helper that records when it fires."""

    def __init__(self, time, log, label, priority=10):
        super().__init__(time, priority)
        self.log = log
        self.label = label

    def fire(self, simulator):
        self.log.append((self.time, self.label))


def test_event_rejects_negative_time():
    with pytest.raises(ValueError):
        Event(-1.0)


def test_queue_orders_by_time():
    queue = EventQueue()
    log = []
    queue.push(RecordingEvent(5.0, log, "late"))
    queue.push(RecordingEvent(1.0, log, "early"))
    queue.push(RecordingEvent(3.0, log, "middle"))
    order = [queue.pop().label for _ in range(3)]
    assert order == ["early", "middle", "late"]


def test_queue_breaks_ties_by_priority_then_insertion():
    queue = EventQueue()
    log = []
    queue.push(RecordingEvent(1.0, log, "second", priority=10))
    queue.push(RecordingEvent(1.0, log, "first", priority=0))
    queue.push(RecordingEvent(1.0, log, "third", priority=10))
    order = [queue.pop().label for _ in range(3)]
    assert order == ["first", "second", "third"]


def test_len_counts_only_live_events():
    queue = EventQueue()
    kept = queue.push(CallbackEvent(1.0, lambda sim: None))
    cancelled = queue.push(CallbackEvent(2.0, lambda sim: None))
    assert len(queue) == 2
    queue.cancel(cancelled)
    assert len(queue) == 1
    assert queue.pop() is kept
    assert len(queue) == 0


def test_pop_skips_cancelled_events():
    queue = EventQueue()
    first = queue.push(CallbackEvent(1.0, lambda sim: None))
    second = queue.push(CallbackEvent(2.0, lambda sim: None))
    queue.cancel(first)
    assert queue.pop() is second


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_ignores_cancelled():
    queue = EventQueue()
    first = queue.push(CallbackEvent(1.0, lambda sim: None))
    queue.push(CallbackEvent(4.0, lambda sim: None))
    assert queue.peek_time() == 1.0
    queue.cancel(first)
    assert queue.peek_time() == 4.0


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(CallbackEvent(1.0, lambda sim: None))
    queue.clear()
    assert not queue
    assert queue.peek_time() is None


def test_callback_event_invokes_callback():
    calls = []
    event = CallbackEvent(1.0, calls.append)
    event.fire("the-simulator")
    assert calls == ["the-simulator"]
