"""Unit tests for the MaxProp router."""

import pytest

from repro.testing import inject_message, make_contact_plan, make_world
from repro.routing.maxprop import MaxPropRouter


def test_meeting_probabilities_are_normalised(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="maxprop")
    simulator.run(until=250.0)
    probs = world.get_node(0).router.meeting_probabilities()
    assert probs
    assert sum(probs.values()) == pytest.approx(1.0)


def test_probabilities_grow_on_meeting_and_stay_normalised():
    trace = make_contact_plan([
        (10.0, 20.0, 0, 1),
        (50.0, 60.0, 0, 1),
        (90.0, 100.0, 0, 1),
        (130.0, 140.0, 0, 2),
    ])
    simulator, world = make_world(trace, protocol="maxprop", num_nodes=3)
    simulator.run(until=70.0)
    probs_before = world.get_node(0).router.meeting_probabilities()
    assert probs_before == {1: pytest.approx(1.0)}
    simulator.run(until=200.0)
    probs_after = world.get_node(0).router.meeting_probabilities()
    # meeting node 2 moved probability mass toward it (MaxProp's incremental
    # averaging is recency-weighted, not a plain frequency count)
    assert probs_after[2] > 0.0
    assert probs_after[1] < probs_before[1]
    assert sum(probs_after.values()) == pytest.approx(1.0)


def test_path_cost_finite_only_for_reachable_destinations():
    trace = make_contact_plan([
        (10.0, 20.0, 0, 1),
        (50.0, 60.0, 0, 1),
        (90.0, 100.0, 1, 2),
        (120.0, 130.0, 0, 1),
    ])
    simulator, world = make_world(trace, protocol="maxprop", num_nodes=4)
    simulator.run(until=150.0)
    router = world.get_node(0).router
    assert router.path_cost(0) == 0.0
    # node 1 is a direct acquaintance: cheap (cost 0 because it is node 0's
    # only acquaintance, so its likelihood is 1); node 2 is reachable through
    # node 1's exchanged likelihood vector: dearer but finite
    assert 0.0 <= router.path_cost(1) < router.path_cost(2) < float("inf")
    assert router.path_cost(3) == float("inf")  # never heard of node 3


def test_floods_like_epidemic(chain_trace):
    simulator, world = make_world(chain_trace, protocol="maxprop")
    inject_message(world, source=0, destination=2)
    simulator.run(until=200.0)
    assert world.stats.is_delivered("M1")


def test_acks_flush_delivered_messages_network_wide():
    # 0 -> 1 -> 2 (destination).  When 1 later meets 0 again, the ack must
    # remove 0's stale replica.
    trace = make_contact_plan([
        (10.0, 30.0, 0, 1),
        (60.0, 90.0, 1, 2),    # delivery: node 2 creates the ack
        (100.0, 110.0, 1, 2),  # node 1 learns the ack from the destination
        (120.0, 150.0, 0, 1),  # node 0 learns it from node 1 and flushes
    ])
    simulator, world = make_world(trace, protocol="maxprop")
    inject_message(world, source=0, destination=2)
    simulator.run(until=95.0)
    assert world.stats.is_delivered("M1")
    assert world.get_node(0).router.has_message("M1")  # not yet acked
    simulator.run(until=200.0)
    assert not world.get_node(0).router.has_message("M1")
    # and the acked message is never accepted again
    assert "M1" in world.get_node(0).router._acked


def test_buffer_eviction_prefers_high_cost_old_messages():
    trace = make_contact_plan([(10.0, 100.0, 0, 1)])
    simulator, world = make_world(trace, protocol="maxprop", num_nodes=4,
                                  buffer_capacity=3000)
    # three messages fill the receiver's buffer; a fourth forces an eviction
    for index in range(4):
        inject_message(world, source=0, destination=2 + (index % 2), size=1000,
                       message_id=f"M{index}")
    simulator.run(until=120.0)
    receiver = world.get_node(1)
    assert receiver.buffer.occupancy <= 3000
    assert world.stats.dropped >= 1


def test_hop_threshold_validation():
    with pytest.raises(ValueError):
        MaxPropRouter(hop_threshold=-1)
