"""Unit tests for the bounded message buffer."""

import pytest

from repro.net.buffer import BufferFullError, DropPolicy, MessageBuffer
from repro.net.message import Message


def msg(mid, size=100, created=0.0, ttl=1000.0, received=None):
    message = Message(mid, 0, 1, size, created, ttl)
    if received is not None:
        message.received_time = received
    return message


def test_add_and_query():
    buffer = MessageBuffer(capacity=1000)
    buffer.add(msg("A", 300))
    buffer.add(msg("B", 200))
    assert len(buffer) == 2
    assert "A" in buffer and "B" in buffer
    assert buffer.occupancy == 500
    assert buffer.free_space == 500
    assert buffer.get("A").message_id == "A"
    assert buffer.get("missing") is None
    assert [m.message_id for m in buffer.messages()] == ["A", "B"]


def test_duplicate_add_rejected():
    buffer = MessageBuffer(capacity=1000)
    buffer.add(msg("A"))
    with pytest.raises(ValueError):
        buffer.add(msg("A"))


def test_oversized_message_rejected():
    buffer = MessageBuffer(capacity=100)
    with pytest.raises(BufferFullError):
        buffer.add(msg("big", 200))


def test_eviction_oldest_received():
    buffer = MessageBuffer(capacity=300, drop_policy=DropPolicy.OLDEST_RECEIVED)
    buffer.add(msg("old", 100, received=1.0))
    buffer.add(msg("mid", 100, received=2.0))
    buffer.add(msg("new", 100, received=3.0))
    evicted = buffer.add(msg("incoming", 150, received=4.0))
    assert [m.message_id for m in evicted] == ["old", "mid"]
    assert "incoming" in buffer and "new" in buffer


def test_eviction_shortest_ttl():
    buffer = MessageBuffer(capacity=200, drop_policy=DropPolicy.SHORTEST_TTL)
    buffer.add(msg("short", 100, created=0.0, ttl=10.0))
    buffer.add(msg("long", 100, created=0.0, ttl=1000.0))
    evicted = buffer.add(msg("incoming", 100))
    assert [m.message_id for m in evicted] == ["short"]


def test_eviction_largest():
    buffer = MessageBuffer(capacity=300, drop_policy=DropPolicy.LARGEST)
    buffer.add(msg("small", 50))
    buffer.add(msg("large", 200))
    evicted = buffer.add(msg("incoming", 100))
    assert [m.message_id for m in evicted] == ["large"]


def test_no_drop_policy_raises_when_full():
    buffer = MessageBuffer(capacity=150, drop_policy=DropPolicy.NO_DROP)
    buffer.add(msg("A", 100))
    with pytest.raises(BufferFullError):
        buffer.add(msg("B", 100))
    assert "A" in buffer


def test_protected_messages_never_evicted():
    buffer = MessageBuffer(capacity=200,
                           protected=lambda m: m.message_id == "precious")
    buffer.add(msg("precious", 150))
    buffer.add(msg("normal", 50))
    with pytest.raises(BufferFullError):
        buffer.add(msg("incoming", 150))
    assert "precious" in buffer


def test_remove_returns_message_and_updates_occupancy():
    buffer = MessageBuffer(capacity=1000)
    buffer.add(msg("A", 300))
    removed = buffer.remove("A")
    assert removed.message_id == "A"
    assert buffer.occupancy == 0
    assert buffer.remove("A") is None


def test_drop_expired():
    buffer = MessageBuffer(capacity=1000)
    buffer.add(msg("fresh", created=0.0, ttl=1000.0))
    buffer.add(msg("stale", created=0.0, ttl=50.0))
    expired = buffer.drop_expired(now=60.0)
    assert [m.message_id for m in expired] == ["stale"]
    assert "fresh" in buffer


def test_occupancy_ratio():
    buffer = MessageBuffer(capacity=400)
    assert buffer.occupancy_ratio == 0.0
    buffer.add(msg("A", 100))
    assert buffer.occupancy_ratio == pytest.approx(0.25)
    unbounded = MessageBuffer()
    assert unbounded.occupancy_ratio == 0.0


def test_clear():
    buffer = MessageBuffer(capacity=1000)
    buffer.add(msg("A"))
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.occupancy == 0
