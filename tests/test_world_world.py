"""Integration-style unit tests for the world update loop (movement-driven)."""

import numpy as np
import pytest

from repro.mobility.base import MovementModel
from repro.mobility.path import Path
from repro.mobility.stationary import StationaryMovement
from repro.net.message import Message
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.sim.engine import Simulator
from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.world import World


class StraightLineMovement(MovementModel):
    """Deterministic movement: start at `origin`, move along +x at `speed`."""

    def __init__(self, origin, speed):
        self.origin = np.asarray(origin, dtype=float)
        self.speed = speed

    def initial_position(self, rng):
        return self.origin.copy()

    def next_path(self, position, now, rng):
        target = position + np.array([1e6, 0.0])
        return Path([position, target], speed=self.speed)


def build_world(movements, protocol=EpidemicRouter, update_interval=1.0,
                transmit_range=10.0):
    simulator = Simulator(seed=1)
    world = World(simulator, update_interval=update_interval)
    interface = Interface(transmit_range=transmit_range, transmit_speed=250_000)
    for node_id, movement in enumerate(movements):
        node = DTNNode(node_id, movement, simulator.random.python(f"n{node_id}"),
                       interface=interface)
        protocol().attach(node, world)
        world.add_node(node)
    return simulator, world


def test_add_node_requires_router_and_unique_id():
    simulator = Simulator(seed=1)
    world = World(simulator)
    node = DTNNode(0, StationaryMovement((0, 0)), simulator.random.python("n0"))
    with pytest.raises(ValueError):
        world.add_node(node)
    DirectDeliveryRouter().attach(node, world)
    world.add_node(node)
    twin = DTNNode(0, StationaryMovement((1, 1)), simulator.random.python("n0b"))
    DirectDeliveryRouter().attach(twin, world)
    with pytest.raises(ValueError):
        world.add_node(twin)


def test_nodes_in_range_get_connected_and_stats_recorded():
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StationaryMovement((5.0, 0.0)),
        StationaryMovement((500.0, 0.0)),
    ])
    simulator.run(until=3.0)
    assert world.connection_between(0, 1) is not None
    assert world.connection_between(0, 2) is None
    assert world.stats.contacts == 1
    assert world.get_node(0).connected_peers() == [1]


def test_link_goes_down_when_nodes_separate():
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StraightLineMovement((5.0, 0.0), speed=2.0),
    ])
    simulator.run(until=1.0)
    assert world.connection_between(0, 1) is not None
    simulator.run(until=10.0)  # by t=3 the mover is beyond 10 m
    assert world.connection_between(0, 1) is None
    assert len(world.stats.contact_records) == 1
    record = world.stats.contact_records[0]
    assert record.duration > 0


def test_direct_delivery_over_one_contact():
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StationaryMovement((5.0, 0.0)),
    ], protocol=DirectDeliveryRouter)
    message = Message("M1", 0, 1, size=25 * 1024, creation_time=0.0, ttl=600.0)
    world.create_message(0, message)
    simulator.run(until=5.0)
    assert world.stats.delivered == 1
    assert world.stats.delivery_ratio == 1.0
    # 25 KB at 250 KB/s takes ~0.1 s; delivered on the tick after contact up
    assert world.stats.delivered_records[0].latency <= 3.0
    # sender dropped its replica after the delivery
    assert not world.get_node(0).router.has_message("M1")


def test_relay_through_intermediate_node_with_epidemic():
    # 0 and 1 are in range; 1 and 2 are in range; 0 and 2 are not
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StationaryMovement((8.0, 0.0)),
        StationaryMovement((16.0, 0.0)),
    ], protocol=EpidemicRouter)
    message = Message("M1", 0, 2, size=1000, creation_time=0.0, ttl=600.0)
    world.create_message(0, message)
    simulator.run(until=10.0)
    assert world.stats.is_delivered("M1")
    delivered = world.stats.delivered_records[0]
    assert delivered.hop_count == 2


def test_message_expires_if_never_deliverable():
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StationaryMovement((500.0, 0.0)),
    ], protocol=EpidemicRouter)
    message = Message("M1", 0, 1, size=1000, creation_time=0.0, ttl=30.0)
    world.create_message(0, message)
    simulator.run(until=60.0)
    assert world.stats.delivered == 0
    assert world.stats.expired == 1
    assert not world.get_node(0).router.has_message("M1")


def test_positions_and_lookup_helpers():
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StationaryMovement((5.0, 0.0)),
    ])
    assert world.num_nodes == 2
    assert world.node_ids() == [0, 1]
    assert world.positions().shape == (2, 2)
    assert world.community_of(0) is None
    with pytest.raises(KeyError):
        world.get_node(99)


def test_update_interval_validation():
    simulator = Simulator(seed=1)
    with pytest.raises(ValueError):
        World(simulator, update_interval=0.0)


def test_duplicate_arrivals_at_destination_count_one_delivery():
    """Regression: replicas reaching the destination over two disjoint paths
    must produce exactly one delivery record (and no duplicate accounting)."""
    # 1 and 3 both pick up the message from 0, then both meet destination 2
    simulator, world = build_world([
        StationaryMovement((0.0, 0.0)),
        StationaryMovement((6.0, 0.0)),      # relay A, in range of 0 and 2
        StationaryMovement((12.0, 0.0)),     # destination
        StationaryMovement((6.0, 6.0)),      # relay B, in range of 0 and 2
    ], protocol=EpidemicRouter)
    message = Message("M1", 0, 2, size=1000, creation_time=0.0, ttl=600.0)
    world.create_message(0, message)
    simulator.run(until=20.0)
    assert world.stats.is_delivered("M1")
    assert world.stats.delivered == 1
    assert len(world.stats.delivered_records) == 1
    # the destination saw the replica arrive over both paths: one delivery,
    # one duplicate (the observability counter stays live)
    arrivals = [rec for rec in world.stats.relayed_records
                if rec.to_node == 2 and rec.final_delivery]
    assert len(arrivals) == 2
    assert world.stats.duplicate_deliveries == 1
