"""Unit tests for the EER router (Algorithm 1)."""

import pytest

from repro.testing import inject_message, make_contact_plan, make_world
from repro.core.eer import EERRouter


def test_parameter_validation():
    with pytest.raises(ValueError):
        EERRouter(alpha=1.5)
    with pytest.raises(ValueError):
        EERRouter(alpha=-0.1)
    with pytest.raises(ValueError):
        EERRouter(memd_refresh=-1.0)
    with pytest.raises(ValueError):
        EERRouter(forward_margin=1.0)
    router = EERRouter(alpha=0.28)
    assert router.horizon_for(1200.0) == pytest.approx(0.28 * 1200.0)
    assert router.horizon_for(-5.0) == 0.0


def test_mi_exchange_on_contact_makes_matrices_consistent():
    trace = make_contact_plan([
        (10.0, 20.0, 1, 2),
        (100.0, 110.0, 1, 2),
        (200.0, 230.0, 0, 1),
    ])
    simulator, world = make_world(trace, protocol="eer", num_nodes=3)
    simulator.run(until=250.0)
    mi0 = world.get_node(0).router.mi
    mi1 = world.get_node(1).router.mi
    # node 0 learned node 1's row (average interval to node 2 = 90 s)
    assert mi0.interval(1, 2) == pytest.approx(90.0)
    assert mi1.interval(1, 2) == pytest.approx(90.0)
    assert world.stats.control_rows_exchanged >= 1


def test_replica_split_conserves_total_quota(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="eer", num_nodes=3)
    inject_message(world, source=0, destination=2, copies=10, ttl=5000.0)
    simulator.run(until=60.0)
    copies0 = world.get_node(0).buffer.get("M1").copies
    copies1 = world.get_node(1).buffer.get("M1").copies
    assert copies0 + copies1 == 10
    assert copies0 >= 1 and copies1 >= 1


def test_split_favours_node_with_higher_expected_ev():
    # node 1 meets nodes 2 and 3 every ~50 s (high EEV); node 0 meets nobody
    # else.  When 0 (holding 10 replicas) meets 1, most replicas should move.
    contacts = []
    for t in range(10, 400, 50):
        contacts.append((float(t), float(t) + 5.0, 1, 2))
        contacts.append((float(t) + 10.0, float(t) + 15.0, 1, 3))
    contacts.append((500.0, 540.0, 0, 1))
    trace = make_contact_plan(contacts)
    simulator, world = make_world(trace, protocol="eer", num_nodes=5)
    inject_message(world, source=0, destination=4, copies=10, now=450.0, ttl=2000.0)
    simulator.run(until=600.0)
    copies0 = world.get_node(0).buffer.get("M1").copies
    copies1 = world.get_node(1).buffer.get("M1").copies
    assert copies0 + copies1 == 10
    assert copies1 > copies0


def test_memd_to_self_is_zero_and_unknown_is_inf(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="eer", num_nodes=3)
    simulator.run(until=60.0)
    router = world.get_node(0).router
    assert router.memd_to(0) == 0.0
    assert router.memd_to(2) == float("inf")
    assert router.memd_to(99) == float("inf")


def test_single_copy_forwarded_to_node_with_smaller_memd():
    # node 1 meets the destination (3) every 100 s; node 0 has never seen it.
    contacts = [(float(t), float(t) + 10.0, 1, 3) for t in (10, 110, 210, 310)]
    contacts.append((400.0, 440.0, 0, 1))
    contacts.append((510.0, 540.0, 1, 3))
    trace = make_contact_plan(contacts)
    simulator, world = make_world(trace, protocol="eer", num_nodes=4)
    inject_message(world, source=0, destination=3, copies=1, now=350.0, ttl=5000.0)
    simulator.run(until=450.0)
    # the single replica was forwarded (not copied) to the better relay
    assert world.get_node(1).router.has_message("M1")
    assert not world.get_node(0).router.has_message("M1")
    simulator.run(until=600.0)
    assert world.stats.is_delivered("M1")


def test_single_copy_not_forwarded_to_clueless_node():
    # neither node knows the destination: both MEMDs are infinite -> keep it
    trace = make_contact_plan([(10.0, 50.0, 0, 1)])
    simulator, world = make_world(trace, protocol="eer", num_nodes=3)
    inject_message(world, source=0, destination=2, copies=1, ttl=5000.0)
    simulator.run(until=100.0)
    assert world.get_node(0).router.has_message("M1")
    assert not world.get_node(1).router.has_message("M1")


def test_expired_messages_are_not_routed(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="eer", num_nodes=3)
    inject_message(world, source=0, destination=2, copies=10, ttl=5.0)
    simulator.run(until=100.0)
    assert world.stats.relayed == 0
    assert world.stats.expired == 1


def test_total_replicas_never_exceed_lambda_across_network():
    trace = make_contact_plan([
        (10.0, 40.0, 0, 1),
        (10.0, 40.0, 0, 2),
        (60.0, 90.0, 1, 3),
        (60.0, 90.0, 2, 4),
        (100.0, 130.0, 0, 5),
    ])
    simulator, world = make_world(trace, protocol="eer", num_nodes=7)
    inject_message(world, source=0, destination=6, copies=10, ttl=5000.0)
    simulator.run(until=150.0)
    total = 0
    for node_id in range(7):
        message = world.get_node(node_id).buffer.get("M1")
        if message is not None:
            total += message.copies
    assert total == 10


def test_memd_cache_refreshes_after_interval():
    trace = make_contact_plan([(10.0, 500.0, 0, 1)])
    simulator, world = make_world(trace, protocol="eer", num_nodes=3,
                                  router_params={"memd_refresh": 5.0})
    simulator.run(until=20.0)
    router = world.get_node(0).router
    router.memd_to(1)
    computes = router._memd.computes
    # repeat queries inside the staleness budget are served from the cache
    router.memd_to(1)
    router.memd_to(2)
    assert router._memd.computes == computes
    assert router._memd.hits >= 2
    # ... but after memd_refresh seconds the vector is recomputed
    simulator.run(until=40.0)
    router.memd_to(1)
    assert router._memd.computes > computes


def test_memd_cache_invalidated_only_by_effective_state_changes():
    trace = make_contact_plan([(10.0, 500.0, 0, 1)])
    simulator, world = make_world(trace, protocol="eer", num_nodes=3,
                                  router_params={"memd_refresh": 1e9})
    simulator.run(until=20.0)
    router = world.get_node(0).router
    router.memd_to(1)
    computes = router._memd.computes
    # nothing changed: stays cached regardless of elapsed queries
    router.memd_to(2)
    assert router._memd.computes == computes
    # a recorded contact changes the history version -> recompute
    router.history.record_contact(2, 21.0)
    router.memd_to(1)
    assert router._memd.computes == computes + 1
