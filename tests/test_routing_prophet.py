"""Unit tests for the PRoPHET router."""

import pytest

from repro.testing import inject_message, make_contact_plan, make_world
from repro.routing.prophet import ProphetRouter


def test_parameter_validation():
    with pytest.raises(ValueError):
        ProphetRouter(p_init=0.0)
    with pytest.raises(ValueError):
        ProphetRouter(beta=1.5)
    with pytest.raises(ValueError):
        ProphetRouter(gamma=1.0)
    with pytest.raises(ValueError):
        ProphetRouter(time_unit=0.0)


def test_direct_encounter_raises_predictability(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="prophet")
    simulator.run(until=20.0)
    router = world.get_node(0).router
    assert router.delivery_predictability(1) == pytest.approx(0.75, abs=0.05)
    assert router.delivery_predictability(2) == 0.0


def test_repeated_encounters_increase_predictability(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="prophet")
    simulator.run(until=20.0)
    after_first = world.get_node(0).router.delivery_predictability(1)
    simulator.run(until=250.0)
    after_second = world.get_node(0).router.delivery_predictability(1)
    assert after_second > after_first


def test_predictability_ages_over_time():
    trace = make_contact_plan([(10.0, 20.0, 0, 1)])
    simulator, world = make_world(trace, protocol="prophet")
    simulator.run(until=25.0)
    fresh = world.get_node(0).router.delivery_predictability(1)
    simulator.run(until=2000.0)
    aged = world.get_node(0).router.delivery_predictability(1)
    assert aged < fresh


def test_transitive_predictability(chain_trace):
    # 0 meets 1, then 1 meets 2: node 1 learns about 2 directly, and when the
    # trace is extended with another 0-1 contact node 0 learns transitively.
    trace = make_contact_plan([
        (10.0, 30.0, 0, 1),
        (100.0, 130.0, 1, 2),
        (200.0, 230.0, 0, 1),
    ])
    simulator, world = make_world(trace, protocol="prophet")
    simulator.run(until=300.0)
    router0 = world.get_node(0).router
    assert router0.delivery_predictability(2) > 0.0
    assert router0.delivery_predictability(2) < router0.delivery_predictability(1)


def test_message_replicated_to_higher_predictability_node():
    # node 1 meets the destination (2) repeatedly, then meets the source (0):
    # 0 should replicate the message to 1, while keeping its own copy.
    trace = make_contact_plan([
        (10.0, 20.0, 1, 2),
        (60.0, 70.0, 1, 2),
        (120.0, 150.0, 0, 1),
        (200.0, 230.0, 1, 2),
    ])
    simulator, world = make_world(trace, protocol="prophet")
    inject_message(world, source=0, destination=2, ttl=5000.0)
    simulator.run(until=160.0)
    assert world.get_node(1).router.has_message("M1")
    assert world.get_node(0).router.has_message("M1")  # replication, not forwarding
    simulator.run(until=300.0)
    assert world.stats.is_delivered("M1")


def test_message_not_given_to_lower_predictability_node():
    # node 1 has never met the destination: the source keeps the message
    trace = make_contact_plan([
        (10.0, 20.0, 0, 2),   # source meets the destination before the message exists
        (120.0, 150.0, 0, 1),
    ])
    simulator, world = make_world(trace, protocol="prophet")
    simulator.run(until=100.0)  # build the source's predictability toward node 2
    inject_message(world, source=0, destination=2, now=100.0, ttl=5000.0)
    simulator.run(until=200.0)
    assert not world.get_node(1).router.has_message("M1")
    assert world.get_node(0).router.has_message("M1")


def test_control_overhead_recorded(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="prophet")
    simulator.run(until=250.0)
    assert world.stats.control_exchanges >= 1
