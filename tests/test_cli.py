"""CLI tests: argument parsing units and list/run/sweep/figure smoke runs."""

import json

import pytest

from repro.cli import (
    main,
    parse_assignments,
    parse_grid,
    parse_seeds,
    parse_value,
)


# ------------------------------------------------------------------- parsing
def test_parse_seeds_forms():
    assert parse_seeds("7") == [7]
    assert parse_seeds("1-4") == [1, 2, 3, 4]
    assert parse_seeds("1,3,9") == [1, 3, 9]
    with pytest.raises(ValueError):
        parse_seeds("a-b")
    with pytest.raises(ValueError):
        parse_seeds("4-1")


def test_parse_value_types():
    assert parse_value("3") == 3
    assert parse_value("0.5") == 0.5
    assert parse_value("true") is True
    assert parse_value("eer") == "eer"
    assert parse_value("[20, 30]") == (20, 30)
    assert parse_value('"quoted"') == "quoted"


def test_parse_assignments_and_grid():
    overrides = parse_assignments(["sim_time=500", "router.alpha=0.3"])
    assert overrides == {"sim_time": 500, "router.alpha": 0.3}
    with pytest.raises(ValueError):
        parse_assignments(["no-equals"])
    grid = parse_grid(["message_copies=4,8", "router.alpha=0.1,0.2"])
    assert grid == {"message_copies": [4, 8], "router.alpha": [0.1, 0.2]}
    with pytest.raises(ValueError):
        parse_grid(["key="])


# --------------------------------------------------------------------- list
def test_list_human(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bench" in out and "trace-csv" in out
    assert "epidemic" in out and "eer" in out


def test_list_json(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in payload["scenarios"]]
    assert len(names) >= 6
    assert "bench" in names
    protocols = [entry["name"] for entry in payload["protocols"]]
    assert "epidemic" in protocols and "eer" in protocols


# ---------------------------------------------------------------------- run
def test_run_json_smoke(capsys):
    code = main(["run", "trace-csv", "--protocol", "epidemic",
                 "--seeds", "1", "--set", "sim_time=600", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "trace-csv"
    assert payload["protocol"] == "epidemic"
    assert len(payload["reports"]) == 1
    assert 0.0 <= payload["summary"]["delivery_ratio"] <= 1.0


def test_run_human_smoke(capsys):
    code = main(["run", "trace-csv", "--seeds", "1",
                 "--set", "sim_time=600"])
    assert code == 0
    out = capsys.readouterr().out
    assert "delivery_ratio" in out
    assert "trace-csv" in out
    # per-phase wall time and the per-phase throughput line
    assert "tick phases (mean wall time per run):" in out
    assert "tick phase throughput (ticks/s):" in out


def test_run_unknown_scenario_fails_with_usage_error(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["run", "does-not-exist"])
    assert exc_info.value.code == 2


def test_run_unknown_protocol_is_reported(capsys):
    code = main(["run", "trace-csv", "--protocol", "warp-drive"])
    assert code == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_run_bad_seed_spec_is_reported(capsys):
    code = main(["run", "trace-csv", "--seeds", "x"])
    assert code == 2
    assert "seed spec" in capsys.readouterr().err


def test_run_type_invalid_set_value_is_reported(capsys):
    # '01' is invalid JSON so it falls back to a string; the resulting
    # TypeError must surface as a friendly error, not a traceback
    code = main(["run", "trace-csv", "--set", "num_nodes=01"])
    assert code == 2
    assert capsys.readouterr().err.startswith("error:")


# -------------------------------------------------------------------- sweep
def test_sweep_json_smoke(capsys):
    code = main(["sweep", "trace-csv", "--protocol", "epidemic",
                 "--seeds", "1", "--set", "sim_time=400",
                 "--grid", "message_copies=2,6", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["points"]) == 2
    assert payload["points"][0]["overrides"] == {"message_copies": 2}


# ------------------------------------------------------- checkpoint / resume
def strip_timings(payload):
    """Drop the machine-timing fields from a run's JSON payload in place."""
    for report in payload["reports"]:
        report.pop("tick_phase_seconds", None)
        report.pop("tick_phase_samples", None)
    return payload


def test_run_checkpointed_and_resumed_match_the_straight_run(capsys, tmp_path):
    base_args = ["run", "trace-csv", "--seeds", "2",
                 "--set", "sim_time=400", "--json"]
    assert main(base_args) == 0
    straight = strip_timings(json.loads(capsys.readouterr().out))

    assert main(base_args + ["--checkpoint-every", "150",
                             "--checkpoint-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    checkpointed = json.loads(captured.out)
    # snapshots at t=150, t=300 and the t=400 horizon, announced on stderr
    assert len(checkpointed["checkpoints"]) == 3
    assert all(path.startswith(str(tmp_path))
               for path in checkpointed["checkpoints"])
    assert captured.err.count("wrote checkpoint") == 3
    # snapshotting is invisible in the report
    assert strip_timings(checkpointed)["reports"] == straight["reports"]

    # resuming the mid-run snapshot reproduces the rest of the run exactly
    snapshot = checkpointed["checkpoints"][0]
    assert main(["run", "trace-csv", "--resume", snapshot, "--json"]) == 0
    resumed = strip_timings(json.loads(capsys.readouterr().out))
    assert resumed["resumed_from"] == snapshot
    assert resumed["reports"] == straight["reports"]
    assert resumed["summary"] == straight["summary"]


def test_run_checkpoint_flag_validation(capsys, tmp_path):
    # snapshots pin one seed: multi-seed specs are rejected up front
    code = main(["run", "trace-csv", "--checkpoint-every", "100",
                 "--seeds", "1-3"])
    assert code == 2
    assert "one seed" in capsys.readouterr().err
    # as is the process backend
    code = main(["run", "trace-csv", "--checkpoint-every", "100",
                 "--backend", "process"])
    assert code == 2
    assert "serial backend" in capsys.readouterr().err
    # --resume accepts no overrides beyond sim_time (checked before loading)
    code = main(["run", "trace-csv", "--resume", "whatever.ckpt",
                 "--set", "num_nodes=5"])
    assert code == 2
    assert "sim_time" in capsys.readouterr().err
    # a missing snapshot is a clean typed error, not a traceback
    code = main(["run", "trace-csv",
                 "--resume", str(tmp_path / "absent.ckpt")])
    assert code == 2
    assert "no snapshot" in capsys.readouterr().err


def test_sweep_resume_forks_horizon_cells_from_one_snapshot(capsys, tmp_path):
    assert main(["run", "trace-csv", "--seeds", "2", "--set", "sim_time=200",
                 "--checkpoint-every", "200",
                 "--checkpoint-dir", str(tmp_path), "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)["checkpoints"][0]

    code = main(["sweep", "trace-csv", "--resume", snapshot,
                 "--grid", "sim_time=300,400", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["overrides"] for p in payload["points"]] \
        == [{"sim_time": 300}, {"sim_time": 400}]
    for point in payload["points"]:
        assert 0.0 <= point["delivery_ratio"] <= 1.0

    # only the horizon axis can fork from a snapshot
    code = main(["sweep", "trace-csv", "--resume", snapshot,
                 "--grid", "message_copies=2,6"])
    assert code == 2
    assert "sim_time" in capsys.readouterr().err


# ------------------------------------------------------------------- figure
def test_figure_json_smoke(capsys, tmp_path):
    output = tmp_path / "fig3.json"
    code = main(["figure", "fig3", "--nodes", "8", "--lambdas", "2",
                 "--seeds", "1", "--set", "sim_time=200", "--json",
                 "--output", str(output)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure_id"] == "fig3"
    assert "delivery_ratio" in payload["metrics"]
    assert json.loads(output.read_text()) == payload
