"""CLI tests: argument parsing units and list/run/sweep/figure smoke runs."""

import json

import pytest

from repro.cli import (
    main,
    parse_assignments,
    parse_grid,
    parse_seeds,
    parse_value,
)


# ------------------------------------------------------------------- parsing
def test_parse_seeds_forms():
    assert parse_seeds("7") == [7]
    assert parse_seeds("1-4") == [1, 2, 3, 4]
    assert parse_seeds("1,3,9") == [1, 3, 9]
    with pytest.raises(ValueError):
        parse_seeds("a-b")
    with pytest.raises(ValueError):
        parse_seeds("4-1")


def test_parse_value_types():
    assert parse_value("3") == 3
    assert parse_value("0.5") == 0.5
    assert parse_value("true") is True
    assert parse_value("eer") == "eer"
    assert parse_value("[20, 30]") == (20, 30)
    assert parse_value('"quoted"') == "quoted"


def test_parse_assignments_and_grid():
    overrides = parse_assignments(["sim_time=500", "router.alpha=0.3"])
    assert overrides == {"sim_time": 500, "router.alpha": 0.3}
    with pytest.raises(ValueError):
        parse_assignments(["no-equals"])
    grid = parse_grid(["message_copies=4,8", "router.alpha=0.1,0.2"])
    assert grid == {"message_copies": [4, 8], "router.alpha": [0.1, 0.2]}
    with pytest.raises(ValueError):
        parse_grid(["key="])


# --------------------------------------------------------------------- list
def test_list_human(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bench" in out and "trace-csv" in out
    assert "epidemic" in out and "eer" in out


def test_list_json(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in payload["scenarios"]]
    assert len(names) >= 6
    assert "bench" in names
    protocols = [entry["name"] for entry in payload["protocols"]]
    assert "epidemic" in protocols and "eer" in protocols


# ---------------------------------------------------------------------- run
def test_run_json_smoke(capsys):
    code = main(["run", "trace-csv", "--protocol", "epidemic",
                 "--seeds", "1", "--set", "sim_time=600", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "trace-csv"
    assert payload["protocol"] == "epidemic"
    assert len(payload["reports"]) == 1
    assert 0.0 <= payload["summary"]["delivery_ratio"] <= 1.0


def test_run_human_smoke(capsys):
    code = main(["run", "trace-csv", "--seeds", "1",
                 "--set", "sim_time=600"])
    assert code == 0
    out = capsys.readouterr().out
    assert "delivery_ratio" in out
    assert "trace-csv" in out
    # per-phase wall time and the per-phase throughput line
    assert "tick phases (mean wall time per run):" in out
    assert "tick phase throughput (ticks/s):" in out


def test_run_unknown_scenario_fails_with_usage_error(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["run", "does-not-exist"])
    assert exc_info.value.code == 2


def test_run_unknown_protocol_is_reported(capsys):
    code = main(["run", "trace-csv", "--protocol", "warp-drive"])
    assert code == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_run_bad_seed_spec_is_reported(capsys):
    code = main(["run", "trace-csv", "--seeds", "x"])
    assert code == 2
    assert "seed spec" in capsys.readouterr().err


def test_run_type_invalid_set_value_is_reported(capsys):
    # '01' is invalid JSON so it falls back to a string; the resulting
    # TypeError must surface as a friendly error, not a traceback
    code = main(["run", "trace-csv", "--set", "num_nodes=01"])
    assert code == 2
    assert capsys.readouterr().err.startswith("error:")


# -------------------------------------------------------------------- sweep
def test_sweep_json_smoke(capsys):
    code = main(["sweep", "trace-csv", "--protocol", "epidemic",
                 "--seeds", "1", "--set", "sim_time=400",
                 "--grid", "message_copies=2,6", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["points"]) == 2
    assert payload["points"][0]["overrides"] == {"message_copies": 2}


# ------------------------------------------------------- checkpoint / resume
def strip_timings(payload):
    """Drop the machine-timing fields from a run's JSON payload in place."""
    for report in payload["reports"]:
        report.pop("tick_phase_seconds", None)
        report.pop("tick_phase_samples", None)
    return payload


def test_run_checkpointed_and_resumed_match_the_straight_run(capsys, tmp_path):
    base_args = ["run", "trace-csv", "--seeds", "2",
                 "--set", "sim_time=400", "--json"]
    assert main(base_args) == 0
    straight = strip_timings(json.loads(capsys.readouterr().out))

    assert main(base_args + ["--checkpoint-every", "150",
                             "--checkpoint-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    checkpointed = json.loads(captured.out)
    # snapshots at t=150, t=300 and the t=400 horizon, announced on stderr
    assert len(checkpointed["checkpoints"]) == 3
    assert all(path.startswith(str(tmp_path))
               for path in checkpointed["checkpoints"])
    assert captured.err.count("wrote checkpoint") == 3
    # snapshotting is invisible in the report
    assert strip_timings(checkpointed)["reports"] == straight["reports"]

    # resuming the mid-run snapshot reproduces the rest of the run exactly
    snapshot = checkpointed["checkpoints"][0]
    assert main(["run", "trace-csv", "--resume", snapshot, "--json"]) == 0
    resumed = strip_timings(json.loads(capsys.readouterr().out))
    assert resumed["resumed_from"] == snapshot
    assert resumed["reports"] == straight["reports"]
    assert resumed["summary"] == straight["summary"]


def test_run_checkpoint_flag_validation(capsys, tmp_path):
    # snapshots pin one seed: multi-seed specs are rejected up front
    code = main(["run", "trace-csv", "--checkpoint-every", "100",
                 "--seeds", "1-3"])
    assert code == 2
    assert "one seed" in capsys.readouterr().err
    # as is the process backend
    code = main(["run", "trace-csv", "--checkpoint-every", "100",
                 "--backend", "process"])
    assert code == 2
    assert "serial backend" in capsys.readouterr().err
    # --resume accepts no overrides beyond sim_time (checked before loading)
    code = main(["run", "trace-csv", "--resume", "whatever.ckpt",
                 "--set", "num_nodes=5"])
    assert code == 2
    assert "sim_time" in capsys.readouterr().err
    # a missing snapshot is a clean typed error, not a traceback
    code = main(["run", "trace-csv",
                 "--resume", str(tmp_path / "absent.ckpt")])
    assert code == 2
    assert "no snapshot" in capsys.readouterr().err


def test_sweep_resume_forks_horizon_cells_from_one_snapshot(capsys, tmp_path):
    assert main(["run", "trace-csv", "--seeds", "2", "--set", "sim_time=200",
                 "--checkpoint-every", "200",
                 "--checkpoint-dir", str(tmp_path), "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)["checkpoints"][0]

    code = main(["sweep", "trace-csv", "--resume", snapshot,
                 "--grid", "sim_time=300,400", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["overrides"] for p in payload["points"]] \
        == [{"sim_time": 300}, {"sim_time": 400}]
    for point in payload["points"]:
        assert 0.0 <= point["delivery_ratio"] <= 1.0

    # only the horizon axis can fork from a snapshot
    code = main(["sweep", "trace-csv", "--resume", snapshot,
                 "--grid", "message_copies=2,6"])
    assert code == 2
    assert "sim_time" in capsys.readouterr().err


# ------------------------------------------------------------------- figure
def test_figure_json_smoke(capsys, tmp_path):
    output = tmp_path / "fig3.json"
    code = main(["figure", "fig3", "--nodes", "8", "--lambdas", "2",
                 "--seeds", "1", "--set", "sim_time=200", "--json",
                 "--output", str(output)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure_id"] == "fig3"
    assert "delivery_ratio" in payload["metrics"]
    assert json.loads(output.read_text()) == payload


# ------------------------------------------------------------ uniform output
def test_every_subcommand_has_uniform_output_flags():
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, __import__("argparse")
                                    ._SubParsersAction))
    for name, sub in subparsers.choices.items():
        flags = {option for action in sub._actions
                 for option in action.option_strings}
        assert "--json" in flags, name
        assert "--output" in flags, name


def test_list_and_run_write_output_files(capsys, tmp_path):
    listed = tmp_path / "list.json"
    assert main(["list", "--output", str(listed)]) == 0
    captured = capsys.readouterr()
    assert f"wrote {listed}" in captured.err
    assert "Scenarios" in captured.out  # human text still renders
    assert "bench" in [s["name"] for s in
                       json.loads(listed.read_text())["scenarios"]]

    ran = tmp_path / "run.json"
    assert main(["run", "trace-csv", "--seeds", "1", "--set", "sim_time=400",
                 "--json", "--output", str(ran)]) == 0
    captured = capsys.readouterr()
    assert json.loads(ran.read_text()) == json.loads(captured.out)


# ------------------------------------------------------------- results store
def test_sweep_store_dedupes_and_merges_byte_identically(capsys, tmp_path):
    store = tmp_path / "results.sqlite"
    first_out = tmp_path / "first.json"
    second_out = tmp_path / "second.json"
    args = ["sweep", "trace-csv", "--seeds", "1,2", "--set", "sim_time=400",
            "--grid", "message_copies=2,6", "--store", str(store)]

    assert main(args + ["--output", str(first_out)]) == 0
    err = capsys.readouterr().err
    assert "store: reused 0 cells, computed 4" in err
    assert err.count("cell ") == 4

    assert main(args + ["--output", str(second_out)]) == 0
    err = capsys.readouterr().err
    assert "store: reused 4 cells, computed 0" in err
    # the merged grid is byte-identical to the freshly computed one
    assert first_out.read_bytes() == second_out.read_bytes()


def test_run_store_serves_recorded_seeds(capsys, tmp_path):
    store = tmp_path / "results.sqlite"
    args = ["run", "trace-csv", "--seeds", "1", "--set", "sim_time=400",
            "--store", str(store), "--json"]
    assert main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    captured = capsys.readouterr()
    assert "reused 1 cells, computed 0" in captured.err
    assert json.loads(captured.out)["summary"] == first["summary"]


def test_store_does_not_combine_with_checkpoints(capsys, tmp_path):
    store = str(tmp_path / "r.sqlite")
    code = main(["run", "trace-csv", "--store", store,
                 "--checkpoint-every", "100"])
    assert code == 2
    assert "--store" in capsys.readouterr().err
    code = main(["sweep", "trace-csv", "--store", store,
                 "--resume", "x.ckpt", "--grid", "sim_time=100,200"])
    assert code == 2
    assert "--store" in capsys.readouterr().err


def test_figure_from_store_does_not_simulate(capsys, tmp_path, monkeypatch):
    store = tmp_path / "results.sqlite"
    args = ["figure", "fig3", "--nodes", "8", "--lambdas", "2",
            "--seeds", "1", "--set", "sim_time=200", "--json"]
    assert main(args + ["--store", str(store)]) == 0
    first = json.loads(capsys.readouterr().out)

    # with every cell stored, rendering must not touch the simulator
    def boom(config):
        raise AssertionError("simulated a stored cell")

    monkeypatch.setattr("repro.experiments.runner.run_scenario", boom)
    assert main(args + ["--from-store", str(store)]) == 0
    captured = capsys.readouterr()
    assert "reused 1 cells, computed 0" in captured.err
    assert json.loads(captured.out) == first


def test_figure_all_renders_every_figure(capsys, tmp_path):
    from repro.experiments.figures import FIGURE_NAMES

    store = tmp_path / "results.sqlite"
    code = main(["figure", "all", "--nodes", "8", "--lambdas", "2",
                 "--protocols", "epidemic,direct", "--seeds", "1",
                 "--set", "sim_time=100", "--store", str(store), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["figures"]) == set(FIGURE_NAMES)
    for name, figure in payload["figures"].items():
        assert figure["figure_id"] == name


# -------------------------------------------------------------------- serve
def test_serve_once_cli(capsys, tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "req.json").write_text(json.dumps(
        {"scenario": "trace-csv", "overrides": {"sim_time": 400},
         "seeds": [1]}))
    store = tmp_path / "results.sqlite"
    summary_file = tmp_path / "summary.json"
    code = main(["serve", str(spool), "--store", str(store), "--once",
                 "--output", str(summary_file)])
    assert code == 0
    captured = capsys.readouterr()
    assert "cell 1/1 computed" in captured.out
    assert "serve: 1 done, 0 failed" in captured.out
    summary = json.loads(summary_file.read_text())
    assert summary["requests_done"] == 1
    assert summary["cells_computed"] == 1
    assert (spool / "done" / "req.result.json").exists()

    # re-queueing the finished request costs nothing: served from the store
    (spool / "req2.json").write_text(json.dumps(
        {"scenario": "trace-csv", "overrides": {"sim_time": 400},
         "seeds": [1]}))
    code = main(["serve", str(spool), "--store", str(store), "--once",
                 "--json"])
    assert code == 0
    events = [json.loads(line)
              for line in capsys.readouterr().out.splitlines()]
    assert events[0]["status"] == "cached"
    assert events[-1]["event"] == "summary"
    assert events[-1]["cells_computed"] == 0


def test_serve_missing_spool_is_reported(capsys, tmp_path):
    code = main(["serve", str(tmp_path / "nope"),
                 "--store", str(tmp_path / "r.sqlite"), "--once"])
    assert code == 2
    assert "spool" in capsys.readouterr().err


def test_run_human_output_includes_transfers_line(capsys):
    code = main(["run", "trace-csv", "--protocol", "epidemic", "--seeds", "1",
                 "--set", "sim_time=600"])
    assert code == 0
    out = capsys.readouterr().out
    # any relayed message is a completed transfer, so the summary line shows
    assert "transfers (mean per run):" in out
    assert "completed" in out and "aborted" in out and "delivered" in out
