"""Eviction-index regression tests and buffer implementation parity.

The heap-indexed :class:`~repro.net.buffer.MessageBuffer` must (a) never fall
back to a full-buffer sort on the hot path — the regression the issue named
was one full sort per eviction loop — and (b) behave identically to the
in-tree :class:`~repro.net.buffer.ReferenceMessageBuffer` oracle under
randomized churn, for every drop policy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.buffer import (
    BufferFullError,
    DropPolicy,
    MessageBuffer,
    ReferenceMessageBuffer,
)
from repro.net.message import Message


def msg(mid, size=100, created=0.0, ttl=1000.0, received=None, dest=1):
    message = Message(str(mid), 0, dest, size, created, ttl)
    if received is not None:
        message.received_time = received
    return message


# ------------------------------------------------------------- regression
def test_add_never_sorts_the_buffer(monkeypatch):
    """The eviction loop must use the maintained index, not a full sort."""
    buffer = MessageBuffer(capacity=1000)

    def boom(self):  # pragma: no cover - failing path
        raise AssertionError("add() fell back to a full-buffer sort")

    monkeypatch.setattr(MessageBuffer, "_eviction_order", boom)
    for i in range(50):
        buffer.add(msg(i, size=100, received=float(i)))
        buffer.drop_expired(now=float(i))
    assert buffer.full_sorts == 0
    assert len(buffer) == 10  # 1000 B capacity / 100 B messages


def test_eviction_work_is_proportional_to_evictions():
    """Heap pops stay O(evicted + expired), not O(n log n) per add."""
    buffer = MessageBuffer(capacity=10 * 100)
    total_evicted = 0
    for i in range(500):
        total_evicted += len(buffer.add(msg(i, size=100, received=float(i))))
        buffer.drop_expired(now=float(i))
    # every add beyond the first ten evicts exactly one message; each
    # eviction costs one evict-heap pop, and each expiry sweep that removes
    # nothing costs zero pops (only a peek).  Allow the stale-entry slack.
    assert total_evicted == 490
    assert buffer.heap_pops <= 2 * total_evicted + 20
    assert buffer.full_sorts == 0


def test_drop_expired_is_cheap_when_nothing_expires():
    buffer = MessageBuffer(capacity=float("inf"))
    for i in range(100):
        buffer.add(msg(i, created=0.0, ttl=10_000.0))
    pops_before = buffer.heap_pops
    for tick in range(100):
        assert buffer.drop_expired(now=float(tick)) == []
    assert buffer.heap_pops == pops_before  # peeks only, no pops


def test_messages_for_destination_index():
    buffer = MessageBuffer(capacity=float("inf"))
    buffer.add(msg("a", dest=1))
    buffer.add(msg("b", dest=2))
    buffer.add(msg("c", dest=1))
    assert [m.message_id for m in buffer.messages_for_destination(1)] == ["a", "c"]
    assert [m.message_id for m in buffer.messages_for_destination(2)] == ["b"]
    assert buffer.messages_for_destination(9) == []
    buffer.remove("a")
    assert [m.message_id for m in buffer.messages_for_destination(1)] == ["c"]
    buffer.clear()
    assert buffer.messages_for_destination(1) == []


def test_heaps_do_not_grow_without_bound_under_turnover():
    """Stale lazy-deletion entries are compacted away on high turnover."""
    # unbounded buffers never evict, so they index nothing in the evict heap
    unbounded = MessageBuffer()
    for i in range(500):
        unbounded.add(msg(i, ttl=10.0, created=float(i)))
        unbounded.drop_expired(now=float(i))
    assert len(unbounded._evict_heap) == 0
    assert len(unbounded._expiry_heap) <= 64 + 4 * len(unbounded)
    # bounded buffers with remove() churn compact their stale entries
    bounded = MessageBuffer(capacity=100_000)
    for i in range(2000):
        bounded.add(msg(i, size=100, received=float(i)))
        if i >= 5:
            bounded.remove(f"{i - 5}")
    assert len(bounded) == 5
    assert len(bounded._evict_heap) <= 64 + 4 * len(bounded)


def test_readd_after_remove_uses_fresh_priority():
    """Stale heap entries from removed/re-added ids must not evict wrongly."""
    buffer = MessageBuffer(capacity=300, drop_policy=DropPolicy.OLDEST_RECEIVED)
    buffer.add(msg("x", size=100, received=1.0))
    buffer.add(msg("y", size=100, received=2.0))
    buffer.remove("x")
    # re-add "x" as the *newest* message: the stale (received=1.0) heap entry
    # must be ignored and "y" evicted first
    buffer.add(msg("x", size=100, received=3.0))
    buffer.add(msg("z", size=100, received=4.0))
    evicted = buffer.add(msg("w", size=200, received=5.0))
    assert [m.message_id for m in evicted] == ["y", "x"]


# ----------------------------------------------------------------- parity
@st.composite
def churn_ops(draw):
    policy = draw(st.sampled_from([p for p in DropPolicy
                                   if p is not DropPolicy.NO_DROP]))
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["add", "remove", "expire"]),
                  st.integers(0, 39),
                  st.integers(50, 400),     # size
                  st.integers(0, 50),       # created / received offset
                  st.integers(1, 500)),     # ttl
        min_size=1, max_size=80))
    return policy, ops


@given(churn_ops())
@settings(max_examples=80)
def test_indexed_buffer_matches_reference_under_churn(scenario):
    policy, ops = scenario
    fast = MessageBuffer(capacity=1000, drop_policy=policy)
    ref = ReferenceMessageBuffer(capacity=1000, drop_policy=policy)
    clock = 0.0
    for kind, ident, size, offset, ttl in ops:
        clock += 1.0
        if kind == "add":
            mid = f"m{ident}"
            if mid in fast:
                continue
            outcomes = []
            for buffer in (fast, ref):
                message = msg(mid, size=size, created=clock - offset,
                              ttl=float(ttl), received=clock, dest=ident % 3)
                try:
                    outcomes.append([m.message_id for m in buffer.add(message)])
                except BufferFullError:
                    outcomes.append("full")
            assert outcomes[0] == outcomes[1]
        elif kind == "remove":
            a = fast.remove(f"m{ident}")
            b = ref.remove(f"m{ident}")
            assert (a is None) == (b is None)
        else:
            dropped_fast = {m.message_id for m in fast.drop_expired(clock)}
            dropped_ref = {m.message_id for m in ref.drop_expired(clock)}
            assert dropped_fast == dropped_ref
        assert fast.message_ids() == ref.message_ids()
        assert fast.occupancy == ref.occupancy
        assert sorted(m.message_id for m in fast.messages_for_destination(0)) \
            == sorted(m.message_id for m in ref.messages_for_destination(0))


def test_protected_parity_under_eviction():
    def protect(message):
        return message.message_id.startswith("keep")

    fast = MessageBuffer(capacity=300, protected=protect)
    ref = ReferenceMessageBuffer(capacity=300, protected=protect)
    for buffer in (fast, ref):
        buffer.add(msg("keep-1", size=100, received=1.0))
        buffer.add(msg("a", size=100, received=2.0))
        buffer.add(msg("b", size=100, received=3.0))
    evicted_fast = [m.message_id for m in fast.add(msg("c", 150, received=4.0))]
    evicted_ref = [m.message_id for m in ref.add(msg("c", 150, received=4.0))]
    assert evicted_fast == evicted_ref == ["a", "b"]
    assert "keep-1" in fast and "keep-1" in ref
    # the protected entry survives in the index for later evictions
    evicted = fast.add(msg("d", size=100, received=5.0))
    assert [m.message_id for m in evicted] == ["c"]
    assert "keep-1" in fast


def test_cannot_make_room_raises_after_partial_eviction_parity():
    fast = MessageBuffer(capacity=300, protected=lambda m: m.message_id == "p")
    ref = ReferenceMessageBuffer(capacity=300,
                                 protected=lambda m: m.message_id == "p")
    for buffer in (fast, ref):
        buffer.add(msg("p", size=200, received=1.0))
        buffer.add(msg("a", size=100, received=2.0))
        with pytest.raises(BufferFullError):
            buffer.add(msg("big", size=250, received=3.0))
    # mirror-ONE semantics: the eviction happened, the incoming was refused
    assert fast.message_ids() == ref.message_ids() == ["p"]
