"""Unit tests for the figure drivers and table rendering (tiny scenarios)."""


from repro.experiments.figures import (
    FigureResult,
    ablation_alpha,
    figure2_comparison,
    figure3_lambda_eer,
)
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.tables import format_figure, format_report_table, format_series_table
from repro.experiments.runner import run_scenario


def tiny_base():
    return ScenarioConfig.bench_scale(num_nodes=10, sim_time=250.0)


def test_figure_result_accumulates_series():
    figure = FigureResult("figX", "demo", "num_nodes")
    figure.add_point("delivery_ratio", "eer", 40, 0.5)
    figure.add_point("delivery_ratio", "eer", 80, 0.6)
    figure.add_point("delivery_ratio", "ebr", 40, 0.4)
    assert figure.series("delivery_ratio", "eer") == [(40.0, 0.5), (80.0, 0.6)]
    assert figure.series_labels("delivery_ratio") == ["eer", "ebr"]
    assert figure.values("delivery_ratio", "eer") == [0.5, 0.6]
    assert figure.mean_value("delivery_ratio", "ebr") == 0.4
    assert figure.mean_value("goodput", "eer") != figure.mean_value("goodput", "eer")  # NaN
    payload = figure.as_dict()
    assert payload["figure_id"] == "figX"
    assert payload["metrics"]["delivery_ratio"]["eer"] == [(40.0, 0.5), (80.0, 0.6)]


def test_figure2_comparison_small_scale():
    figure = figure2_comparison(node_counts=(8,), protocols=("direct", "epidemic"),
                                seeds=(1,), base=tiny_base())
    assert figure.figure_id == "fig2"
    for metric in ("delivery_ratio", "average_latency", "goodput"):
        assert set(figure.series_labels(metric)) == {"direct", "epidemic"}
        for label in ("direct", "epidemic"):
            assert len(figure.series(metric, label)) == 1
    # epidemic cannot deliver less than direct delivery
    assert (figure.mean_value("delivery_ratio", "epidemic")
            >= figure.mean_value("delivery_ratio", "direct"))


def test_figure3_lambda_series_labels():
    figure = figure3_lambda_eer(node_counts=(8,), lambdas=(2, 4), seeds=(1,),
                                base=tiny_base())
    assert set(figure.series_labels("delivery_ratio")) == {"lambda=2", "lambda=4"}


def test_ablation_alpha_uses_router_params():
    figure = ablation_alpha(alphas=(0.1, 0.9), protocol="eer", num_nodes=8,
                            seeds=(1,), base=tiny_base())
    series = figure.series("delivery_ratio", "eer")
    assert [x for x, _ in series] == [0.1, 0.9]


def test_format_series_table_and_figure_render():
    figure = FigureResult("figX", "demo", "num_nodes")
    figure.add_point("delivery_ratio", "eer", 40, 0.512)
    figure.add_point("delivery_ratio", "eer", 80, 0.623)
    figure.add_point("delivery_ratio", "ebr", 40, 0.4)
    table = format_series_table(figure, "delivery_ratio")
    assert "eer" in table and "ebr" in table
    assert "0.512" in table and "40" in table
    assert "-" in table  # missing ebr point at 80 nodes
    assert "(no data" in format_series_table(figure, "unknown_metric")
    rendered = format_figure(figure, metrics=("delivery_ratio",))
    assert rendered.startswith("== figX")


def test_format_report_table():
    report = run_scenario(tiny_base().with_overrides(protocol="direct"))
    table = format_report_table([report])
    assert "direct" in table
    assert "delivery_ratio" in table
