"""Unit tests for DTN nodes."""

import numpy as np
import pytest

from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.mobility.stationary import StationaryMovement
from repro.routing.direct import DirectDeliveryRouter
from repro.sim.rng import RandomStreams
from repro.world.interface import Interface
from repro.world.node import DTNNode


def make_node(node_id=0, movement=None, community=None):
    movement = movement or StationaryMovement((1.0, 2.0))
    rng = RandomStreams(0).python(f"node-{node_id}")
    return DTNNode(node_id, movement, rng, community=community)


def test_node_basic_attributes():
    node = make_node(3)
    assert node.node_id == 3
    assert node.name == "n3"
    assert np.allclose(node.position, (1.0, 2.0))
    assert len(node.buffer) == 0
    assert node.connections == {}
    assert node.router is None


def test_negative_node_id_rejected():
    with pytest.raises(ValueError):
        make_node(-1)


def test_node_moves_with_its_model():
    movement = RandomWaypointMovement(area=(50.0, 50.0), min_speed=1.0, max_speed=1.0,
                                      wait=(0.0, 0.0))
    node = make_node(1, movement=movement)
    start = node.position.copy()
    node.move(10.0, 0.0)
    assert not np.allclose(node.position, start)


def test_community_from_movement_model_or_explicit():
    from repro.mobility.community import CommunityLayout, CommunityMovement
    layout = CommunityLayout(area=(100.0, 100.0), num_communities=2)
    movement = CommunityMovement(layout, community_id=1)
    node = make_node(0, movement=movement)
    assert node.community == 1
    explicit = make_node(1, community=7)
    assert explicit.community == 7
    explicit.community = 9
    assert explicit.community == 9


def test_set_router_wires_back_reference():
    node = make_node(0)
    router = DirectDeliveryRouter()
    node.set_router(router)
    assert node.router is router


def test_default_interface_and_buffer_capacity():
    node = make_node(0)
    assert node.interface == Interface()
    assert node.buffer.capacity == 1024 * 1024


def test_connection_queries():
    node = make_node(0)
    assert node.connection_to(5) is None
    assert node.connected_peers() == []
