"""MovementEngine: batch advance must be bit-identical to the follower loop.

The engine's contract (see repro/mobility/engine.py) is that enabling batch
movement changes *cost only*: every position the simulation observes is the
same 64-bit float pattern the per-follower ``move`` loop would have written.
These tests drive mirrored follower populations — one through the engine,
one through the plain loop — from identical RNG streams and require exact
array equality at every tick, across waypoint changes, pauses, teleports,
halted models, mixed batchable/non-batchable populations and mid-run
registration.
"""

import random

import numpy as np

from repro.mobility.base import MovementModel, PathFollower
from repro.mobility.engine import MovementEngine
from repro.mobility.hcmm import HomeCellMovement
from repro.mobility.community import CommunityLayout
from repro.mobility.path import Path
from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.mobility.stationary import StationaryMovement
from repro.world.positions import PositionStore


def make_population(model_factory, count, seed, batch):
    """A (store, engine, followers) triple with one follower per model."""
    store = PositionStore()
    engine = MovementEngine(store, batch=batch)
    followers = []
    for index in range(count):
        follower = PathFollower(model_factory(index),
                                random.Random(seed * 10_000 + index))
        row = store.add(follower.position)
        follower.bind(store.row(row))
        engine.register(follower)
        followers.append(follower)
    return store, engine, followers


def rwp_factory(index):
    return RandomWaypointMovement(area=(300.0, 200.0), min_speed=0.5,
                                  max_speed=2.0, wait=(0.0, 5.0))


def assert_bit_identical_trajectories(model_factory, count=30, ticks=400,
                                      dt=1.0, seed=3):
    batch_store, batch_engine, _ = make_population(
        model_factory, count, seed, batch=True)
    loop_store, loop_engine, _ = make_population(
        model_factory, count, seed, batch=False)
    now = 0.0
    for _ in range(ticks):
        now += dt
        batch_engine.advance(dt, now)
        loop_engine.advance(dt, now)
        batch = batch_store.view()
        loop = loop_store.view()
        assert np.array_equal(batch, loop), (
            f"positions diverged at t={now}: "
            f"{(batch != loop).any(axis=1).nonzero()[0].tolist()}")
    return batch_engine, loop_engine


def test_random_waypoint_batch_is_bit_identical():
    batch_engine, _ = assert_bit_identical_trajectories(rwp_factory)
    # the point of the engine: almost every node-tick takes the fast path
    assert batch_engine.fast_moves > batch_engine.loop_moves * 5


def test_hcmm_batch_is_bit_identical():
    layout = CommunityLayout(area=(300.0, 200.0), num_communities=4)

    def factory(index):
        return HomeCellMovement(layout, index % 4, roaming_probability=0.3,
                                wait=(0.0, 10.0), rehome_interval=120.0)

    batch_engine, _ = assert_bit_identical_trajectories(factory)
    assert batch_engine.fast_moves > 0


def test_fractional_dt_batch_is_bit_identical():
    assert_bit_identical_trajectories(rwp_factory, count=12, ticks=600,
                                      dt=0.1, seed=11)


def test_mixed_population_and_stationary_nodes():
    def factory(index):
        if index % 3 == 0:
            return StationaryMovement((float(index), 0.0))
        return rwp_factory(index)

    batch_engine, _ = assert_bit_identical_trajectories(factory, count=18)
    # stationary models halt and must be skipped thereafter
    assert batch_engine.fast_moves > 0


def test_non_batchable_model_stays_on_the_loop():
    class LoopOnly(MovementModel):
        def initial_position(self, rng):
            return np.array([0.0, 0.0])

        def next_path(self, position, now, rng):
            destination = (position[0] + rng.uniform(1.0, 5.0), position[1])
            return Path([position, destination], speed=1.0, wait_time=1.0)

    store, engine, followers = make_population(
        lambda index: LoopOnly(), 4, seed=5, batch=True)
    for tick in range(20):
        engine.advance(1.0, float(tick + 1))
    assert engine.fast_moves == 0
    assert engine.loop_moves > 0
    assert not followers[0].model.supports_batch_advance


def test_teleport_invalidates_the_batch_mirror():
    seed, count = 9, 10
    batch_store, batch_engine, batch_followers = make_population(
        rwp_factory, count, seed, batch=True)
    loop_store, loop_engine, loop_followers = make_population(
        rwp_factory, count, seed, batch=False)
    now = 0.0
    for tick in range(300):
        now += 1.0
        if tick in (40, 41, 150):  # mid-run jumps, including back-to-back
            batch_followers[3].teleport((10.0, 20.0))
            loop_followers[3].teleport((10.0, 20.0))
        batch_engine.advance(1.0, now)
        loop_engine.advance(1.0, now)
        assert np.array_equal(batch_store.view(), loop_store.view()), tick


def test_mid_run_registration_grows_the_engine():
    seed = 21
    batch_store, batch_engine, _ = make_population(rwp_factory, 6, seed,
                                                   batch=True)
    loop_store, loop_engine, _ = make_population(rwp_factory, 6, seed,
                                                 batch=False)
    now = 0.0
    for tick in range(200):
        now += 1.0
        if tick == 50:
            for engine, store in ((batch_engine, batch_store),
                                  (loop_engine, loop_store)):
                follower = PathFollower(rwp_factory(6),
                                        random.Random(seed * 10_000 + 6))
                row = store.add(follower.position)
                follower.bind(store.row(row))
                engine.register(follower)
        batch_engine.advance(1.0, now)
        loop_engine.advance(1.0, now)
        assert np.array_equal(batch_store.view(), loop_store.view()), tick
    assert batch_engine.num_followers == 7


def test_world_batch_movement_toggle_is_invisible_in_results():
    # covered end-to-end in test_world_sharded; here: the engine objects
    from repro.experiments.builder import build_scenario
    from repro.experiments.catalog import make_scenario

    config = make_scenario("bench", {"mobility": "random_waypoint",
                                     "num_nodes": 12, "sim_time": 60.0})
    batch = build_scenario(config)
    batch.run()
    assert batch.world.movement.batch_enabled
    assert batch.world.movement.fast_moves > 0
    loop = build_scenario(config.with_overrides(batch_movement=False))
    loop.run()
    assert not loop.world.movement.batch_enabled
    assert loop.world.movement.fast_moves == 0
    assert np.array_equal(batch.world.positions(), loop.world.positions())
