"""Unit tests for the router base class plumbing (buffering, transfers, TTL)."""

import pytest

from repro.testing import inject_message, make_contact_plan, make_world
from repro.net.message import Message
from repro.routing.base import Router
from repro.routing.registry import register_router


def test_create_message_buffers_at_source(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="direct")
    inject_message(world, source=0, destination=1)
    router = world.get_node(0).router
    assert router.has_message("M1")
    assert world.stats.created == 1
    assert not router.delivered_here("M1")


def test_message_for_self_counts_as_delivered_locally(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="direct")
    message = Message("SELF", 0, 0, 100, 0.0, 100.0)
    world.create_message(0, message)
    router = world.get_node(0).router
    assert router.delivered_here("SELF")
    assert not router.has_message("SELF")


def test_direct_delivery_happens_on_contact(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="direct")
    inject_message(world, source=0, destination=1)
    simulator.run(until=100.0)
    assert world.stats.delivered == 1
    assert world.stats.is_delivered("M1")
    # the sender's replica is gone after the hand-over
    assert not world.get_node(0).router.has_message("M1")
    # the receiver records it as delivered, not buffered
    assert world.get_node(1).router.delivered_here("M1")
    assert not world.get_node(1).router.has_message("M1")


def test_ttl_expiry_drops_and_reports(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="direct")
    inject_message(world, source=0, destination=1, ttl=5.0)  # expires before contact
    simulator.run(until=100.0)
    assert world.stats.delivered == 0
    assert world.stats.expired == 1
    assert not world.get_node(0).router.has_message("M1")


def test_duplicate_replicas_are_rejected_by_receiver():
    # 0 meets 1 twice with epidemic: the second contact must not re-transfer
    trace = make_contact_plan([(10.0, 30.0, 0, 1), (60.0, 80.0, 0, 1)])
    simulator, world = make_world(trace, protocol="epidemic", num_nodes=3)
    inject_message(world, source=0, destination=2)
    simulator.run(until=100.0)
    # exactly one relay happened (0 -> 1), not one per contact
    assert world.stats.relayed == 1
    assert world.get_node(1).router.has_message("M1")


def test_transfer_aborted_on_link_down_keeps_message():
    # contact too short for a 2.5 MB message at 250 kB/s (needs 10 s)
    trace = make_contact_plan([(10.0, 13.0, 0, 1)])
    simulator, world = make_world(trace, protocol="epidemic", num_nodes=3)
    inject_message(world, source=0, destination=2, size=2_500_000)
    simulator.run(until=50.0)
    assert world.stats.aborted == 1
    assert world.stats.relayed == 0
    assert world.get_node(0).router.has_message("M1")
    assert not world.get_node(1).router.has_message("M1")


def test_send_refuses_duplicate_queued_transfer(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="epidemic", num_nodes=3)
    inject_message(world, source=0, destination=2, size=2_500_000)
    simulator.run(until=12.0)
    router = world.get_node(0).router
    connection = world.connection_between(0, 1)
    assert connection is not None
    message = router.buffer.get("M1")
    assert connection.is_transferring("M1")
    assert router.send(connection, message) is None


def test_custom_router_registration_and_hooks(two_node_trace):
    events = []

    class RecordingRouter(Router):
        name = "recording"

        def on_contact_up(self, connection, peer):
            events.append(("up", self.node_id, peer.node_id))

        def on_contact_down(self, connection, peer):
            events.append(("down", self.node_id, peer.node_id))

        def on_update(self, now):
            for connection in self.connections():
                self.send_deliverable(connection)

    register_router("recording", RecordingRouter)
    simulator, world = make_world(two_node_trace, protocol="recording")
    inject_message(world, source=0, destination=1)
    simulator.run(until=300.0)
    assert ("up", 0, 1) in events and ("up", 1, 0) in events
    assert ("down", 0, 1) in events and ("down", 1, 0) in events
    assert world.stats.delivered == 1


def test_attach_twice_rejected(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="direct")
    router = world.get_node(0).router
    with pytest.raises(RuntimeError):
        router.attach(world.get_node(1), world)


def test_buffer_overflow_drops_and_records():
    trace = make_contact_plan([(10.0, 40.0, 0, 1)])
    simulator, world = make_world(trace, protocol="epidemic", num_nodes=3,
                                  buffer_capacity=2500)
    # receiver's buffer only fits two 1000-byte messages
    for index in range(3):
        inject_message(world, source=0, destination=2, size=1000,
                       message_id=f"M{index}")
    simulator.run(until=50.0)
    receiver_buffer = world.get_node(1).buffer
    assert receiver_buffer.occupancy <= 2500
    assert world.stats.dropped >= 1
