"""Unit tests for the meeting-interval matrix and its freshness-based exchange."""

import numpy as np
import pytest

from repro.contacts.mi_matrix import MeetingIntervalMatrix


def test_initial_state():
    mi = MeetingIntervalMatrix(num_nodes=4, owner_id=1)
    assert mi.values.shape == (4, 4)
    assert np.isinf(mi.values).sum() == 12  # all off-diagonal entries unknown
    assert (np.diag(mi.values) == 0).all()
    assert mi.known_rows() == 0


def test_update_own_row():
    mi = MeetingIntervalMatrix(4, owner_id=1)
    mi.update_own_row({0: 120.0, 3: 60.0}, now=500.0)
    assert mi.interval(1, 0) == 120.0
    assert mi.interval(1, 3) == 60.0
    assert np.isinf(mi.interval(1, 2))
    assert mi.row_update_times[1] == 500.0
    assert mi.known_rows() == 1


def test_update_own_row_validation():
    mi = MeetingIntervalMatrix(4, owner_id=1)
    with pytest.raises(IndexError):
        mi.update_own_row({9: 100.0}, now=1.0)
    with pytest.raises(ValueError):
        mi.update_own_row({0: -5.0}, now=1.0)
    # the owner's own entry is silently skipped
    mi.update_own_row({1: 100.0}, now=1.0)
    assert mi.interval(1, 1) == 0.0


def test_constructor_validation():
    with pytest.raises(ValueError):
        MeetingIntervalMatrix(0, 0)
    with pytest.raises(ValueError):
        MeetingIntervalMatrix(4, 7)


def test_merge_takes_only_fresher_rows():
    a = MeetingIntervalMatrix(3, owner_id=0)
    b = MeetingIntervalMatrix(3, owner_id=1)
    a.update_own_row({1: 100.0}, now=10.0)
    b.update_own_row({0: 100.0, 2: 50.0}, now=20.0)
    copied = a.merge_from(b)
    assert copied == 1
    assert a.interval(1, 2) == 50.0
    # merging again copies nothing (no fresher rows)
    assert a.merge_from(b) == 0
    # b learns a's row too
    assert b.merge_from(a) == 1
    assert b.interval(0, 1) == 100.0


def test_merge_never_overwrites_own_row():
    a = MeetingIntervalMatrix(3, owner_id=0)
    b = MeetingIntervalMatrix(3, owner_id=1)
    a.update_own_row({1: 100.0}, now=10.0)
    # b fabricates a fresher row about node 0
    b._values[0, 1] = 999.0
    b._row_updated[0] = 50.0
    a.merge_from(b)
    assert a.interval(0, 1) == 100.0


def test_merge_propagates_third_party_rows():
    # node 2's row reaches node 0 via node 1
    m0 = MeetingIntervalMatrix(3, owner_id=0)
    m1 = MeetingIntervalMatrix(3, owner_id=1)
    m2 = MeetingIntervalMatrix(3, owner_id=2)
    m2.update_own_row({1: 75.0}, now=5.0)
    m1.merge_from(m2)
    m0.merge_from(m1)
    assert m0.interval(2, 1) == 75.0


def test_rows_fresher_than_counts_exchange_size():
    a = MeetingIntervalMatrix(3, owner_id=0)
    b = MeetingIntervalMatrix(3, owner_id=1)
    a.update_own_row({1: 10.0}, now=100.0)
    assert a.rows_fresher_than(b) == 1
    assert b.rows_fresher_than(a) == 0


def test_merge_size_mismatch():
    a = MeetingIntervalMatrix(3, owner_id=0)
    b = MeetingIntervalMatrix(4, owner_id=1)
    with pytest.raises(ValueError):
        a.merge_from(b)


def test_copy_is_deep():
    a = MeetingIntervalMatrix(3, owner_id=0)
    a.update_own_row({1: 10.0}, now=1.0)
    clone = a.copy()
    clone.update_own_row({1: 99.0}, now=2.0)
    assert a.interval(0, 1) == 10.0
