"""Unit tests for explicit community assignments."""

import pytest

from repro.community.assignment import CommunityAssignment


def test_round_robin_assignment():
    assignment = CommunityAssignment.round_robin(num_nodes=7, num_communities=3)
    assert len(assignment) == 7
    assert assignment.num_communities == 3
    assert assignment.community_of(0) == 0
    assert assignment.community_of(4) == 1
    assert sorted(assignment.members(0)) == [0, 3, 6]
    assert assignment.nodes() == list(range(7))


def test_from_groups_resolves_overlap_to_first_group():
    assignment = CommunityAssignment.from_groups([{0, 1, 2}, {2, 3}])
    assert assignment.community_of(2) == 0
    assert assignment.community_of(3) == 1
    assert assignment.members(1) == [3]


def test_same_community_and_dict_round_trip():
    assignment = CommunityAssignment({0: 1, 1: 1, 2: 2})
    assert assignment.same_community(0, 1)
    assert not assignment.same_community(0, 2)
    assert assignment.as_dict() == {0: 1, 1: 1, 2: 2}
    assert assignment.communities() == {1: [0, 1], 2: [2]}


def test_unknown_node_raises():
    assignment = CommunityAssignment({0: 0})
    with pytest.raises(KeyError):
        assignment.community_of(99)
    assert assignment.members(42) == []


def test_empty_assignment_rejected():
    with pytest.raises(ValueError):
        CommunityAssignment({})
    with pytest.raises(ValueError):
        CommunityAssignment.round_robin(0, 3)
