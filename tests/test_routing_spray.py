"""Unit tests for Spray-and-Wait and Spray-and-Focus."""


from repro.testing import inject_message, make_contact_plan, make_world
from repro.routing.spray_and_wait import SprayAndWaitRouter


def total_copies(world, message_id, nodes):
    total = 0
    for node_id in nodes:
        message = world.get_node(node_id).buffer.get(message_id)
        if message is not None:
            total += message.copies
    return total


def test_binary_spray_halves_quota(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="spray-and-wait",
                                  num_nodes=3)
    inject_message(world, source=0, destination=2, copies=8)
    simulator.run(until=60.0)
    assert world.get_node(0).buffer.get("M1").copies == 4
    assert world.get_node(1).buffer.get("M1").copies == 4
    assert total_copies(world, "M1", range(3)) == 8


def test_vanilla_spray_passes_single_copy(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="spray-and-wait",
                                  num_nodes=3, router_params={"binary": False})
    inject_message(world, source=0, destination=2, copies=8)
    simulator.run(until=60.0)
    assert world.get_node(0).buffer.get("M1").copies == 7
    assert world.get_node(1).buffer.get("M1").copies == 1


def test_wait_phase_only_delivers_directly():
    trace = make_contact_plan([
        (10.0, 30.0, 0, 1),    # spray: 0 gives half to 1
        (50.0, 70.0, 1, 2),    # 1 has a single copy: must NOT hand it to 2
        (90.0, 110.0, 1, 3),   # 1 finally meets the destination 3
    ])
    simulator, world = make_world(trace, protocol="spray-and-wait", num_nodes=4)
    inject_message(world, source=0, destination=3, copies=2)
    simulator.run(until=80.0)
    assert world.get_node(1).buffer.get("M1").copies == 1
    assert not world.get_node(2).router.has_message("M1")
    simulator.run(until=150.0)
    assert world.stats.is_delivered("M1")


def test_copies_to_pass_logic():
    binary = SprayAndWaitRouter(binary=True)
    assert binary.copies_to_pass(10) == 5
    assert binary.copies_to_pass(3) == 1
    assert binary.copies_to_pass(1) == 0
    vanilla = SprayAndWaitRouter(binary=False)
    assert vanilla.copies_to_pass(10) == 1
    assert vanilla.copies_to_pass(1) == 0


def test_spray_and_focus_forwards_single_copy_to_better_utility():
    # node 2 has met the destination (3) recently and repeatedly; node 1 holds
    # the last copy and should hand it over in the focus phase.
    trace = make_contact_plan([
        (10.0, 20.0, 2, 3),
        (200.0, 210.0, 2, 3),
        (400.0, 410.0, 2, 3),
        (600.0, 630.0, 0, 1),     # spray: 0 -> 1 gets one of two copies
        (700.0, 730.0, 1, 2),     # focus: 1 -> 2 (2's last-encounter age is lower)
        (800.0, 830.0, 2, 3),     # delivery
    ])
    simulator, world = make_world(trace, protocol="spray-and-focus", num_nodes=4)
    inject_message(world, source=0, destination=3, copies=2, now=550.0, ttl=5000.0)
    simulator.run(until=760.0)
    assert world.get_node(2).router.has_message("M1")
    assert not world.get_node(1).router.has_message("M1")
    simulator.run(until=900.0)
    assert world.stats.is_delivered("M1")


def test_spray_and_focus_keeps_copy_when_peer_is_not_better():
    # node 2 has never met the destination: utility is infinite, no hand-over
    trace = make_contact_plan([
        (10.0, 40.0, 0, 1),
        (100.0, 130.0, 1, 2),
    ])
    simulator, world = make_world(trace, protocol="spray-and-focus", num_nodes=4)
    inject_message(world, source=0, destination=3, copies=2)
    simulator.run(until=200.0)
    assert world.get_node(1).router.has_message("M1")
    assert not world.get_node(2).router.has_message("M1")
