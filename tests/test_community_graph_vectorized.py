"""Reference vs vectorized contact-graph aggregation parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.community.graph import (
    contact_edge_arrays,
    contact_graph_from_history,
    contact_graph_from_history_vectorized,
    graph_from_edge_weights,
)
from repro.contacts.history import ContactHistory, ContactHistoryReference


def _assert_graphs_identical(reference, vectorized):
    assert set(reference.nodes) == set(vectorized.nodes)
    assert set(map(frozenset, reference.edges)) \
        == set(map(frozenset, vectorized.edges))
    for u, v, data in reference.edges(data=True):
        other = vectorized[u][v]
        assert other["weight"] == data["weight"]
        if data["mean_interval"] is None:
            assert other["mean_interval"] is None
        else:
            # bit-identical, not approximately equal: the vectorized cumsum
            # must reproduce the reference's sequential sum exactly
            assert other["mean_interval"] == data["mean_interval"]


def _record_stream(contacts, num_nodes, window=4):
    histories = [ContactHistory(node, window) for node in range(num_nodes)]
    now = 0.0
    for a, b, step in contacts:
        a, b = a % num_nodes, b % num_nodes
        if a == b:
            continue
        now += step
        histories[a].record_contact(b, now)
        histories[b].record_contact(a, now)
    return histories


def test_simple_parity_and_min_contacts():
    histories = _record_stream(
        [(0, 1, 1.0), (0, 1, 2.5), (0, 2, 1.0), (1, 2, 3.0), (0, 1, 0.25)],
        num_nodes=4)
    for min_contacts in (1, 2, 3):
        reference = contact_graph_from_history(histories, min_contacts)
        vectorized = contact_graph_from_history_vectorized(
            histories, min_contacts)
        _assert_graphs_identical(reference, vectorized)


def test_empty_histories():
    histories = [ContactHistory(n) for n in range(3)]
    vectorized = contact_graph_from_history_vectorized(histories)
    assert set(vectorized.nodes) == {0, 1, 2}
    assert vectorized.number_of_edges() == 0
    owners, lo, hi, weights, means = contact_edge_arrays(histories)
    assert list(owners) == [0, 1, 2]
    assert len(lo) == len(hi) == len(weights) == len(means) == 0


def test_edge_arrays_shapes_and_weights():
    histories = _record_stream([(0, 1, 1.0)] * 7 + [(1, 2, 2.0)], num_nodes=3)
    owners, lo, hi, weights, means = contact_edge_arrays(histories)
    order = np.lexsort((hi, lo))
    assert [(int(lo[i]), int(hi[i]), int(weights[i])) for i in order] \
        == [(0, 1, 7), (1, 2, 1)]
    # 0-1 recorded 6 intervals into window 4; mean covers the last 4
    assert not np.isnan(means[order[0]])
    # 1-2 met once: no interval recorded on either side
    assert np.isnan(means[order[1]])


def test_one_sided_window_asymmetry_resolves_like_reference():
    # different window sizes trim the two endpoints' views differently;
    # the combiner must keep the larger count and the smaller mean
    h0 = ContactHistory(0, window_size=2)
    h1 = ContactHistory(1, window_size=8)
    for t in (1.0, 2.0, 10.0, 11.0, 30.0):
        h0.record_contact(1, t)
        h1.record_contact(0, t)
    _assert_graphs_identical(contact_graph_from_history([h0, h1]),
                             contact_graph_from_history_vectorized([h0, h1]))


@settings(max_examples=50, deadline=None)
@given(
    contacts=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9),
                  st.floats(min_value=0.25, max_value=100.0,
                            allow_nan=False, allow_infinity=False)),
        max_size=80),
    num_nodes=st.integers(min_value=2, max_value=10),
    window=st.integers(min_value=1, max_value=6),
    min_contacts=st.integers(min_value=1, max_value=3),
)
def test_property_parity(contacts, num_nodes, window, min_contacts):
    histories = _record_stream(contacts, num_nodes, window=window)
    _assert_graphs_identical(
        contact_graph_from_history(histories, min_contacts),
        contact_graph_from_history_vectorized(histories, min_contacts))


def test_vectorized_builder_accepts_reference_histories():
    # the builders take either history implementation: a CR router built
    # with reference_impl=True must feed the same pipeline
    stream = [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 3.0), (0, 2, 1.5), (0, 1, 4.0)]
    production = _record_stream(stream, num_nodes=3)
    reference = []
    now = 0.0
    for node in range(3):
        reference.append(ContactHistoryReference(node, 4))
    for a, b, step in stream:
        now += step
        reference[a].record_contact(b, now)
        reference[b].record_contact(a, now)
    _assert_graphs_identical(
        contact_graph_from_history_vectorized(production),
        contact_graph_from_history_vectorized(reference))
    _assert_graphs_identical(
        contact_graph_from_history(reference),
        contact_graph_from_history_vectorized(reference))


def test_graph_from_edge_weights():
    graph = graph_from_edge_weights({(0, 1): 3.0, (1, 2): 1.0},
                                    nodes=range(4))
    assert set(graph.nodes) == {0, 1, 2, 3}
    assert graph[0][1]["weight"] == pytest.approx(3.0)
    assert graph.number_of_edges() == 2
