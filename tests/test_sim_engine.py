"""Unit tests for the simulation engine."""

import pytest

from repro.sim.engine import SimulationError


def test_clock_starts_at_zero(simulator):
    assert simulator.now == 0.0


def test_schedule_and_run_advances_clock(simulator):
    times = []
    simulator.schedule(5.0, lambda sim: times.append(sim.now))
    simulator.schedule(2.0, lambda sim: times.append(sim.now))
    simulator.run(until=10.0)
    assert times == [2.0, 5.0]
    assert simulator.now == 10.0


def test_run_stops_at_horizon_and_keeps_later_events(simulator):
    fired = []
    simulator.schedule(1.0, lambda sim: fired.append("early"))
    simulator.schedule(20.0, lambda sim: fired.append("late"))
    simulator.run(until=10.0)
    assert fired == ["early"]
    assert len(simulator.queue) == 1
    simulator.run(until=30.0)
    assert fired == ["early", "late"]


def test_schedule_at_absolute_time(simulator):
    seen = []
    simulator.schedule_at(7.5, lambda sim: seen.append(sim.now))
    simulator.run(until=8.0)
    assert seen == [7.5]


def test_schedule_into_past_raises(simulator):
    simulator.schedule(1.0, lambda sim: None)
    simulator.run(until=5.0)
    with pytest.raises(SimulationError):
        simulator.schedule_at(2.0, lambda sim: None)
    with pytest.raises(SimulationError):
        simulator.schedule(-1.0, lambda sim: None)


def test_events_scheduled_during_run_fire(simulator):
    order = []

    def first(sim):
        order.append("first")
        sim.schedule(1.0, lambda s: order.append("chained"))

    simulator.schedule(1.0, first)
    simulator.run(until=10.0)
    assert order == ["first", "chained"]


def test_stop_halts_run(simulator):
    fired = []
    simulator.schedule(1.0, lambda sim: (fired.append(1), sim.stop()))
    simulator.schedule(2.0, lambda sim: fired.append(2))
    simulator.run(until=10.0)
    assert fired == [1]


def test_cancel_pending_event(simulator):
    fired = []
    event = simulator.schedule(1.0, lambda sim: fired.append(1))
    simulator.cancel(event)
    simulator.run(until=5.0)
    assert fired == []


def test_step_fires_exactly_one_event(simulator):
    fired = []
    simulator.schedule(1.0, lambda sim: fired.append(1))
    simulator.schedule(2.0, lambda sim: fired.append(2))
    assert simulator.step() is True
    assert fired == [1]
    assert simulator.step() is True
    assert simulator.step() is False


def test_finish_hooks_run_once(simulator):
    calls = []
    simulator.add_finish_hook(lambda sim: calls.append(sim.now))
    simulator.schedule(1.0, lambda sim: None)
    simulator.run(until=2.0)
    assert calls == [2.0]
    simulator.run(until=3.0)
    assert calls == [2.0]


def test_horizon_before_now_raises(simulator):
    simulator.schedule(1.0, lambda sim: None)
    simulator.run(until=5.0)
    with pytest.raises(SimulationError):
        simulator.run(until=1.0)


def test_fired_event_counter(simulator):
    for delay in (1.0, 2.0, 3.0):
        simulator.schedule(delay, lambda sim: None)
    simulator.run(until=10.0)
    assert simulator.fired_events == 3
