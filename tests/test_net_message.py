"""Unit tests for the Message model."""

import pytest

from repro.net.message import Message


def make_message(**overrides):
    params = dict(message_id="M1", source=0, destination=5, size=1000,
                  creation_time=100.0, ttl=600.0, copies=10)
    params.update(overrides)
    return Message(**params)


def test_basic_attributes():
    msg = make_message()
    assert msg.message_id == "M1"
    assert msg.source == 0
    assert msg.destination == 5
    assert msg.hops == [0]
    assert msg.hop_count == 0
    assert msg.received_time == 100.0


def test_validation_errors():
    with pytest.raises(ValueError):
        make_message(size=0)
    with pytest.raises(ValueError):
        make_message(copies=0)
    with pytest.raises(ValueError):
        make_message(ttl=0)


def test_ttl_expiry():
    msg = make_message()
    assert msg.expiry_time == 700.0
    assert not msg.is_expired(699.9)
    assert msg.is_expired(700.0)
    assert msg.residual_ttl(400.0) == 300.0
    assert msg.residual_ttl(800.0) == -100.0


def test_add_hop_and_hop_count():
    msg = make_message()
    msg.add_hop(3)
    msg.add_hop(5)
    assert msg.hops == [0, 3, 5]
    assert msg.hop_count == 2


def test_replicate_shares_identity_but_not_state():
    msg = make_message()
    msg.add_hop(2)
    clone = msg.replicate(copies=4, receiver=7, now=150.0)
    assert clone == msg  # identity by message id
    assert clone.copies == 4
    assert clone.hops == [0, 2, 7]
    assert clone.received_time == 150.0
    # mutating the clone does not affect the original
    clone.add_hop(9)
    clone.metadata["k"] = 1
    assert msg.hops == [0, 2]
    assert "k" not in msg.metadata


def test_replicate_requires_at_least_one_copy():
    with pytest.raises(ValueError):
        make_message().replicate(copies=0, receiver=1, now=0.0)


def test_equality_and_hash_follow_message_id():
    a = make_message()
    b = make_message(source=3, size=99)
    assert a == b
    assert hash(a) == hash(b)
    c = make_message(message_id="M2")
    assert a != c
    assert a != "M1"
