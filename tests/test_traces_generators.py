"""Unit tests for the synthetic contact-trace generators."""

import numpy as np
import pytest

from repro.traces.generators import (
    TRACE_GENERATORS,
    community_structured_trace,
    drifting_community_trace,
    generate_trace,
    periodic_contact_trace,
    random_waypoint_like_trace,
)


def intercontact_times(trace, pair):
    starts = [start for p, start, _ in trace.contacts() if p == pair]
    return np.diff(sorted(starts))


def test_periodic_trace_has_low_jitter_intervals():
    trace = periodic_contact_trace(num_nodes=4, duration=5000.0,
                                   period_range=(300.0, 300.0),
                                   contact_duration=10.0, jitter=0.0, seed=1)
    gaps = intercontact_times(trace, (0, 1))
    assert len(gaps) >= 10
    assert np.allclose(gaps, 310.0, atol=2.0)  # period + contact duration


def test_periodic_trace_pair_fraction():
    full = periodic_contact_trace(num_nodes=6, duration=2000.0, seed=2)
    sparse = periodic_contact_trace(num_nodes=6, duration=2000.0,
                                    pair_fraction=0.3, seed=2)
    pairs_full = {p for p, _, _ in full.contacts()}
    pairs_sparse = {p for p, _, _ in sparse.contacts()}
    assert len(pairs_sparse) < len(pairs_full)


def test_random_trace_is_memoryless_ish():
    trace = random_waypoint_like_trace(num_nodes=3, duration=30000.0,
                                       mean_intercontact=200.0,
                                       contact_duration=5.0, seed=3)
    gaps = intercontact_times(trace, (0, 1))
    assert len(gaps) > 30
    # exponential gaps: coefficient of variation close to 1 (very loose bound)
    cv = gaps.std() / gaps.mean()
    assert 0.5 < cv < 1.6


def test_community_trace_intra_much_denser_than_inter():
    trace, truth = community_structured_trace(
        num_nodes=8, num_communities=2, duration=5000.0,
        intra_period=200.0, inter_period=2500.0, seed=5)
    intra = inter = 0
    for (a, b), _, _ in trace.contacts():
        if truth[a] == truth[b]:
            intra += 1
        else:
            inter += 1
    assert intra > 3 * inter
    assert set(truth) == set(range(8))


def _pair_rate_in_window(trace, pair, start, end):
    contacts = [s for p, s, _ in trace.contacts()
                if p == pair and start <= s < end]
    return len(contacts) / (end - start)


def test_drifting_trace_ground_truth_is_first_epoch():
    trace, truth = drifting_community_trace(
        num_nodes=8, num_communities=2, duration=4000.0,
        drift_interval=1000.0, drift_fraction=0.5, seed=3)
    assert truth == {node: node % 2 for node in range(8)}
    assert len(trace.events) > 0
    # events are well-formed up/down alternations per pair
    open_pairs = set()
    for event in trace.events:
        key = (min(event.node_a, event.node_b), max(event.node_a, event.node_b))
        if event.up:
            assert key not in open_pairs
            open_pairs.add(key)
        else:
            open_pairs.discard(key)


def test_drifting_trace_without_drift_matches_first_epoch_structure():
    trace, truth = drifting_community_trace(
        num_nodes=8, num_communities=2, duration=6000.0,
        drift_interval=1000.0, drift_fraction=0.0,
        intra_period=150.0, inter_period=2500.0, seed=7)
    intra = inter = 0
    for (a, b), _, _ in trace.contacts():
        if truth[a] == truth[b]:
            intra += 1
        else:
            inter += 1
    assert intra > 3 * inter


def test_drifting_trace_changes_pair_rates_across_epochs():
    # with full per-epoch drift, at least one pair's contact rate must move
    # between the first and last quarter of the trace
    trace, _ = drifting_community_trace(
        num_nodes=6, num_communities=3, duration=8000.0,
        drift_interval=2000.0, drift_fraction=1.0,
        intra_period=100.0, inter_period=3000.0, jitter=0.05, seed=11)
    moved = 0
    for a in range(6):
        for b in range(a + 1, 6):
            early = _pair_rate_in_window(trace, (a, b), 0.0, 2000.0)
            late = _pair_rate_in_window(trace, (a, b), 6000.0, 8000.0)
            if abs(early - late) * 2000.0 >= 3:
                moved += 1
    assert moved >= 1


def test_drifting_generator_registered_and_validated():
    assert "drifting" in TRACE_GENERATORS
    trace, communities = generate_trace(
        "drifting", num_nodes=6, num_communities=2, duration=1000.0, seed=1)
    assert communities == {node: node % 2 for node in range(6)}
    assert len(trace.events) > 0
    with pytest.raises(ValueError):
        drifting_community_trace(num_nodes=1, num_communities=1, duration=10.0)
    with pytest.raises(ValueError):
        drifting_community_trace(num_nodes=4, num_communities=2,
                                 duration=10.0, drift_interval=0.0)
    with pytest.raises(ValueError):
        drifting_community_trace(num_nodes=4, num_communities=2,
                                 duration=10.0, drift_fraction=1.5)


def test_generators_are_reproducible():
    a = periodic_contact_trace(num_nodes=4, duration=1000.0, seed=9)
    b = periodic_contact_trace(num_nodes=4, duration=1000.0, seed=9)
    assert a.events == b.events
    c = periodic_contact_trace(num_nodes=4, duration=1000.0, seed=10)
    assert a.events != c.events


def test_generator_validation():
    with pytest.raises(ValueError):
        periodic_contact_trace(num_nodes=1, duration=100.0)
    with pytest.raises(ValueError):
        periodic_contact_trace(num_nodes=3, duration=100.0, pair_fraction=0.0)
    with pytest.raises(ValueError):
        random_waypoint_like_trace(num_nodes=1, duration=100.0)
    with pytest.raises(ValueError):
        community_structured_trace(num_nodes=1, num_communities=1, duration=100.0)
