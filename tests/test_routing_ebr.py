"""Unit tests for the EBR baseline."""

import pytest

from repro.testing import inject_message, make_contact_plan, make_world
from repro.routing.ebr import EBRRouter


def test_parameter_validation():
    with pytest.raises(ValueError):
        EBRRouter(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        EBRRouter(ewma_alpha=1.5)
    with pytest.raises(ValueError):
        EBRRouter(window=0.0)


def test_encounter_value_tracks_contact_rate():
    # node 0 meets someone every 10 s; node 3 only once
    contacts = [(float(t), float(t) + 5.0, 0, 1 + (t // 10) % 2) for t in range(10, 310, 10)]
    contacts.append((50.0, 55.0, 3, 4))
    trace = make_contact_plan(contacts)
    simulator, world = make_world(trace, protocol="ebr", num_nodes=5)
    simulator.run(until=320.0)
    busy = world.get_node(0).router.encounter_value
    quiet = world.get_node(3).router.encounter_value
    assert busy > quiet
    assert quiet >= 0.0


def test_replicas_split_proportionally_to_encounter_values():
    # node 1 is "busy" (meets 2 and 3 often) before meeting the source
    contacts = []
    for t in range(10, 200, 20):
        contacts.append((float(t), float(t) + 5.0, 1, 2))
        contacts.append((float(t) + 7.0, float(t) + 12.0, 1, 3))
    contacts.append((300.0, 340.0, 0, 1))
    trace = make_contact_plan(contacts)
    simulator, world = make_world(trace, protocol="ebr", num_nodes=5)
    inject_message(world, source=0, destination=4, copies=10, now=250.0, ttl=5000.0)
    simulator.run(until=400.0)
    source_copies = world.get_node(0).buffer.get("M1").copies
    relay_copies = world.get_node(1).buffer.get("M1").copies
    assert source_copies + relay_copies == 10
    # the idle source hands most replicas to the busy relay
    assert relay_copies > source_copies


def test_single_copy_waits_for_destination():
    trace = make_contact_plan([
        (10.0, 40.0, 0, 1),    # split: both end with >= 1 copy
        (100.0, 130.0, 1, 2),  # 1 has one copy: must NOT hand it to 2
        (200.0, 230.0, 1, 3),  # 1 meets the destination
    ])
    simulator, world = make_world(trace, protocol="ebr", num_nodes=4)
    inject_message(world, source=0, destination=3, copies=2, ttl=5000.0)
    simulator.run(until=150.0)
    assert world.get_node(1).buffer.get("M1").copies == 1
    assert not world.get_node(2).router.has_message("M1")
    simulator.run(until=300.0)
    assert world.stats.is_delivered("M1")


def test_total_copies_never_exceed_lambda():
    trace = make_contact_plan([
        (10.0, 40.0, 0, 1),
        (10.0, 40.0, 0, 2),
        (50.0, 80.0, 1, 3),
        (50.0, 80.0, 2, 4),
    ])
    simulator, world = make_world(trace, protocol="ebr", num_nodes=6)
    inject_message(world, source=0, destination=5, copies=8, ttl=5000.0)
    simulator.run(until=100.0)
    total = 0
    for node_id in range(6):
        message = world.get_node(node_id).buffer.get("M1")
        if message is not None:
            total += message.copies
    assert total == 8


def test_ev_exchange_overhead_counted(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="ebr")
    simulator.run(until=250.0)
    assert world.stats.control_rows_exchanged >= 2
