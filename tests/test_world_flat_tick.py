"""The flattened tick: idle-router skip-list, pooled links, flat_tick pin.

PR6 restructures the world tick — routers with provably nothing to do are
skipped (the idle router contract, DESIGN.md), link events are applied with
batched contact stats over pooled ``Connection`` objects, and the transfer
phase walks only connections with queued traffic.  ``flat_tick=False`` pins
the historical structure as the benchmark reference.  Every one of those
changes is required to be invisible in simulation outcomes; these tests pin

* the skip-list's wake conditions on hand-built traces — a loaded router
  with no contacts must still wake exactly when a TTL comes due, and an
  empty-buffer router must stay hot while a transfer is in flight toward it
  (and go back to sleep after its peer aborts),
* those same wake conditions *across a checkpoint/restore cycle* — a router
  asleep with a due TTL at the snapshot tick wakes on the first resumed
  tick, and an in-flight transfer picked up from a snapshot completes
  exactly as it would have uninterrupted,
* end-to-end byte-identity of full scenario reports across
  ``router_skiplist``, ``flat_tick`` and the process-pool sharded detector,
* the decoded link keys being plain Python ints (``np.int64`` leakage
  regression),
* batch contact-stat recording matching the per-event calls, and
* connection-pool recycling across diff applications.
"""

import json

import numpy as np
import pytest

from repro.checkpoint import load_checkpoint_bytes, save_checkpoint_bytes
from repro.experiments.catalog import make_scenario
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import StatsCollector
from repro.net.message import Message
from repro.routing.epidemic import EpidemicRouter
from repro.sim.engine import Simulator
from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.replay import build_trace_world
from repro.world.world import World, _decode_codes


def make_trace(intervals):
    """intervals: list of (start, end, a, b)."""
    events = []
    for start, end, a, b in intervals:
        events.append(ContactEvent(start, a, b, True))
        events.append(ContactEvent(end, a, b, False))
    return ContactTrace(events)


class TickLoggingRouter(EpidemicRouter):
    """Epidemic router that records the times its update tick actually ran."""

    name = "tick-logging"

    def __init__(self) -> None:
        super().__init__()
        self.tick_times = []

    def on_update(self, now: float) -> None:
        self.tick_times.append(now)
        super().on_update(now)


def use_tick_logging_routers(world, count):
    routers = {}
    for node_id in range(count):
        node = world.get_node(node_id)
        router = TickLoggingRouter()
        node.router = None
        router.attach(node, world)
        routers[node_id] = router
    return routers


STAT_AGGREGATES = ("created", "relayed", "delivered", "dropped", "expired",
                   "aborted", "contacts")


def assert_same_outcomes(world_a, world_b):
    for attr in STAT_AGGREGATES:
        assert getattr(world_a.stats, attr) == getattr(world_b.stats, attr), attr
    record = lambda stats: [  # noqa: E731 - local shorthand
        (r.message_id, r.node, r.time, r.reason)
        for r in stats.dropped_records]
    assert record(world_a.stats) == record(world_b.stats)


# ----------------------------------------------------- skip-list edge cases
def run_ttl_expiry_world(**world_kwargs):
    """One contact replicates a message; both copies then expire while idle.

    Node 0 creates a message for node 2 (never connected) with TTL 6; the
    1s-3s contact hands node 1 a replica.  From t=3 both holders sit with a
    loaded buffer and zero connections — the skip-list's sleep state — and
    must wake exactly at the TTL deadline to record the expiry drops.
    """
    trace = make_trace([(1.0, 3.0, 0, 1)])
    simulator, world = build_trace_world(trace, protocol="epidemic",
                                         num_nodes=3, **world_kwargs)
    routers = use_tick_logging_routers(world, 3)
    message = Message("m-ttl", 0, 2, 1000, 0.0, ttl=6.0)
    routers[0].create_message(message)
    simulator.run(until=12.0)
    return world, routers


def test_idle_loaded_router_wakes_exactly_at_ttl_expiry():
    world, routers = run_ttl_expiry_world()
    # the contact replicated the message, nothing was delivered, and both
    # replicas (source + relay) expired
    assert world.stats.relayed == 1
    assert world.stats.delivered == 0
    assert world.stats.expired == 2
    drops = [(r.node, r.time, r.reason) for r in world.stats.dropped_records]
    assert drops == [(0, 6.0, "expired"), (1, 6.0, "expired")]
    # the relay slept through the idle gap (t=4, 5) and woke only for the
    # deadline tick — not a tick late, not a tick early
    idle_gap = [t for t in routers[1].tick_times if 3.0 < t < 6.0]
    assert idle_gap == []
    assert 6.0 in routers[1].tick_times
    # after the drop the buffer is empty and the router sleeps again
    assert [t for t in routers[1].tick_times if t > 6.0] == []
    assert world.routers_skipped > 0


def test_ttl_expiry_outcomes_match_always_tick_reference():
    skiplist, _ = run_ttl_expiry_world()
    reference, _ = run_ttl_expiry_world(router_skiplist=False,
                                        router_soa=False)
    assert reference.routers_skipped == 0
    assert_same_outcomes(skiplist, reference)


def run_mid_transfer_abort_world(**world_kwargs):
    """A 5-tick transfer is cut at t=4, then retried on a later contact.

    The receiver (node 1) has an empty buffer for the whole first contact —
    exactly the state the skip-list would idle — but a transfer is in flight
    toward it, so it must stay hot until its peer's teardown aborts the
    transfer, then go back to sleep until the second contact.
    """
    trace = make_trace([(1.0, 4.0, 0, 1), (8.0, 30.0, 0, 1)])
    simulator, world = build_trace_world(
        trace, protocol="epidemic", num_nodes=2,
        buffer_capacity=4 * 1024 * 1024, **world_kwargs)
    routers = use_tick_logging_routers(world, 2)
    # 5 ticks of airtime at the default 250 kB/s link
    size = int(250_000 * 5)
    routers[0].create_message(Message("m-big", 0, 1, size, 0.0, ttl=1000.0))
    simulator.run(until=30.0)
    return world, routers


def test_receiver_stays_hot_mid_transfer_and_sleeps_after_abort():
    world, routers = run_mid_transfer_abort_world()
    # the first contact's transfer was aborted by the teardown, the retry on
    # the second contact delivered
    assert world.stats.aborted == 1
    assert world.stats.delivered == 1
    times = routers[1].tick_times
    # mid-transfer ticks: empty buffer, no link event, but bytes in flight —
    # the queued-transfer wake condition
    assert 2.0 in times and 3.0 in times
    # after the abort (t=4 teardown) the receiver is provably idle until the
    # second contact's link event at t=8
    assert [t for t in times if 4.0 < t < 8.0] == []
    assert 8.0 in times
    assert world.routers_skipped > 0


def test_mid_transfer_abort_outcomes_match_always_tick_reference():
    skiplist, _ = run_mid_transfer_abort_world()
    reference, _ = run_mid_transfer_abort_world(router_skiplist=False,
                                                router_soa=False)
    assert reference.routers_skipped == 0
    assert_same_outcomes(skiplist, reference)
    # identical delivery time, not just identical counts
    latency = lambda w: w.stats.delivered_latencies().tolist()  # noqa: E731
    assert latency(skiplist) == latency(reference)


def test_historical_tick_matches_flat_tick_on_traces():
    flat, _ = run_mid_transfer_abort_world(router_skiplist=False,
                                           router_soa=False)
    historical, _ = run_mid_transfer_abort_world(router_skiplist=False,
                                                 flat_tick=False,
                                                 router_soa=False,
                                                 transfer_engine=False)
    assert_same_outcomes(flat, historical)


# ------------------------------------------- skip-list state under restore
def checkpoint_roundtrip(world):
    """Serialize *world*, tear it down, and return the restored copy."""
    blob = save_checkpoint_bytes(world)
    world.stop()
    return load_checkpoint_bytes(blob).world


def test_sleeping_router_with_due_ttl_wakes_on_first_resumed_tick():
    """A snapshot taken while both holders sleep (TTL due next tick) must
    restore the skip-list wake conditions, not just the buffers: the resumed
    run's very first tick is the expiry deadline."""
    trace = make_trace([(1.0, 3.0, 0, 1)])
    simulator, world = build_trace_world(trace, protocol="epidemic",
                                         num_nodes=3)
    routers = use_tick_logging_routers(world, 3)
    routers[0].create_message(Message("m-ttl", 0, 2, 1000, 0.0, ttl=6.0))
    simulator.run(until=5.0)
    assert world.stats.expired == 0  # nothing due yet at the snapshot
    restored = checkpoint_roundtrip(world)
    restored.simulator.run(until=12.0)
    drops = [(r.node, r.time, r.reason)
             for r in restored.stats.dropped_records]
    assert drops == [(0, 6.0, "expired"), (1, 6.0, "expired")]
    assert restored.stats.expired == 2
    # the restored relay wakes exactly once after the snapshot — at the
    # deadline — then sleeps again (its logged history travels with it)
    resumed_ticks = [t for t in restored.get_node(1).router.tick_times
                     if t > 5.0]
    assert resumed_ticks == [6.0]
    restored.stop()


def test_mid_transfer_restore_completes_like_an_uninterrupted_run():
    """A snapshot taken with bytes in flight restores the live Connection
    (progress, established_seq, queued-transfer wake) so the abort, the
    retry and the delivery all land exactly as in the uninterrupted run."""
    trace = make_trace([(1.0, 4.0, 0, 1), (8.0, 30.0, 0, 1)])
    simulator, world = build_trace_world(
        trace, protocol="epidemic", num_nodes=2,
        buffer_capacity=4 * 1024 * 1024)
    routers = use_tick_logging_routers(world, 2)
    routers[0].create_message(
        Message("m-big", 0, 1, int(250_000 * 5), 0.0, ttl=1000.0))
    simulator.run(until=2.0)  # transfer started at t=1, ~3 ticks remain
    restored = checkpoint_roundtrip(world)
    restored.simulator.run(until=30.0)
    reference, _ = run_mid_transfer_abort_world()
    assert_same_outcomes(restored, reference)
    times = restored.get_node(1).router.tick_times
    # the restored receiver stays hot while the transfer is still in flight,
    # then goes provably idle between the abort and the second contact
    assert 3.0 in times
    assert [t for t in times if 4.0 < t < 8.0] == []
    restored.stop()


# ------------------------------------------------------- full-scenario pins
def full_run_payload(**overrides):
    config = make_scenario("bench", {
        "mobility": "random_waypoint", "protocol": "epidemic",
        "num_nodes": 50, "sim_time": 500.0, "name": "flat-tick-pin",
        **overrides})
    return json.dumps(run_scenario(config).as_dict(), sort_keys=True)


def test_skiplist_report_byte_identical_to_always_tick():
    assert full_run_payload() == full_run_payload(router_skiplist=False,
                                                  router_soa=False)


def test_skiplist_report_byte_identical_for_unsafe_router():
    # prophet opts out of skipping (idle_skip_safe=False): the skip-list run
    # must still dispatch every router every tick and reproduce the report
    assert full_run_payload(protocol="prophet") \
        == full_run_payload(protocol="prophet", router_skiplist=False,
                            router_soa=False)


def test_flat_tick_report_byte_identical_to_historical_reference():
    """Acceptance pin: the flattened tick == the pre-flattening structure."""
    historical = full_run_payload(router_skiplist=False, flat_tick=False,
                                  router_soa=False, transfer_engine=False)
    assert full_run_payload() == historical


def test_process_pool_report_byte_identical_to_serial_reference():
    """Acceptance pin: process-pool sharded world == serial reference."""
    serial = full_run_payload(detector="kdtree", batch_movement=False,
                              router_skiplist=False, flat_tick=False,
                              router_soa=False, transfer_engine=False)
    process = full_run_payload(detector="sharded", world_workers=2,
                               world_workers_mode="process")
    assert serial == process


# --------------------------------------------------------- decoded link keys
def test_decoded_link_keys_are_plain_python_ints():
    codes = np.array([(1 << 32) | 2, (3 << 32) | 40,
                      (70_000 << 32) | 99_999], dtype=np.int64)
    keys = _decode_codes(codes)
    assert keys == [(1, 2), (3, 40), (70_000, 99_999)]
    for lo, hi in keys:
        # np.int64 would compare and hash equal — require the exact type so
        # connection-table keys never carry boxed scalars
        assert type(lo) is int and type(hi) is int
    # plain sequences and other integer dtypes normalise the same way
    assert _decode_codes([(5 << 32) | 6]) == [(5, 6)]
    assert _decode_codes(np.empty(0, dtype=np.int64)) == []
    lo, hi = World._decode(np.int64((7 << 32) | 8))
    assert (lo, hi) == (7, 8)
    assert type(lo) is int and type(hi) is int


def test_world_connection_keys_are_plain_ints_end_to_end():
    trace = make_trace([(1.0, 10.0, 0, 1), (2.0, 10.0, 1, 2)])
    simulator, world = build_trace_world(trace, num_nodes=3)
    simulator.run(until=5.0)
    assert world._connections
    for key in world._connections:
        assert type(key[0]) is int and type(key[1]) is int
    for node_id in range(3):
        for neighbour in world.get_node(node_id).connections:
            assert type(neighbour) is int


# ------------------------------------------------------- batch contact stats
@pytest.mark.parametrize("mode", ["off", "lists", "columnar"])
def test_contact_batches_match_per_event_calls(mode):
    ups = [(0, 1), (0, 2), (1, 3)]
    per_event = StatsCollector(mode=mode)
    batched = StatsCollector(mode=mode)
    for key in ups:
        per_event.contact_up(*key, 10.0)
    batched.contact_up_batch(ups, 10.0)
    # one pair goes down matched, plus one never-opened pair that both
    # forms must skip the same way
    downs = [(0, 2), (5, 6)]
    for key in downs:
        per_event.contact_down(*key, 25.0)
    batched.contact_down_batch(downs, 25.0)
    assert batched.contacts == per_event.contacts == 3
    assert batched._open_contacts == per_event._open_contacts
    if mode != "off":
        as_tuples = lambda s: [  # noqa: E731
            (r.node_a, r.node_b, r.start, r.end) for r in s.contact_records]
        assert as_tuples(batched) == as_tuples(per_event) \
            == [(0, 2, 10.0, 25.0)]


# --------------------------------------------------------- connection pooling
def test_released_connections_are_recycled_on_the_next_diff():
    simulator, world = build_trace_world(make_trace([]), num_nodes=3)
    world._link_up((0, 1), 0.0)
    first = world._connections[(0, 1)]
    first_seq = first.established_seq
    world._link_down((0, 1), 1.0)
    # released objects only become reusable on the *next* diff application:
    # routers saw this object in the teardown batch just dispatched
    assert first in world._released_connections
    assert not world._connection_pool
    world._link_up((0, 2), 2.0)
    second = world._connections[(0, 2)]
    assert second is first
    assert not world._released_connections
    # reset() re-keyed the object and the fresh sequence number supersedes
    # any stale transfer-phase registration
    assert second.key == (0, 2)
    assert second.node_a.node_id == 0 and second.node_b.node_id == 2
    assert second.established_seq > first_seq
    assert second.is_up


def test_historical_tick_allocates_fresh_connections():
    simulator, world = build_trace_world(make_trace([]), num_nodes=3,
                                         router_skiplist=False,
                                         flat_tick=False, router_soa=False,
                                         transfer_engine=False)
    world._link_up((0, 1), 0.0)
    first = world._connections[(0, 1)]
    world._link_down((0, 1), 1.0)
    assert not world._released_connections
    world._link_up((0, 2), 2.0)
    assert world._connections[(0, 2)] is not first


# ------------------------------------------------------------- config guards
def test_router_skiplist_requires_flat_tick():
    with pytest.raises(ValueError):
        World(Simulator(seed=1), router_skiplist=True, flat_tick=False)
    with pytest.raises(ValueError):
        ScenarioConfig(name="x", flat_tick=False, router_soa=False)
    # the historical reference pairing is valid
    config = ScenarioConfig(name="x", flat_tick=False, router_skiplist=False,
                            router_soa=False, transfer_engine=False)
    assert not config.flat_tick


def test_router_soa_requires_skiplist():
    # the SoA sweep is a vectorized evaluation of the skip predicate: it
    # cannot back the tick-every-router reference loop
    with pytest.raises(ValueError):
        World(Simulator(seed=1), router_skiplist=False, flat_tick=True,
              router_soa=True)
    with pytest.raises(ValueError):
        ScenarioConfig(name="x", router_skiplist=False, router_soa=True)
    # the PR6 benchmark baseline pairing is valid: skip-scan without SoA
    config = ScenarioConfig(name="x", router_soa=False)
    assert config.router_skiplist and not config.router_soa


def test_world_workers_mode_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(name="x", world_workers_mode="fibers")
    with pytest.raises(ValueError):
        # the process pool only exists behind the sharded detector
        ScenarioConfig(name="x", world_workers_mode="process",
                       detector="kdtree")
    config = ScenarioConfig(name="x", world_workers_mode="process",
                            detector="sharded", world_workers=2)
    assert config.world_workers_mode == "process"
