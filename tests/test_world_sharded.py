"""ShardedConnectivity: bit-identity with the reference detectors.

The sharded detector's whole value proposition is that its strip/halo
decomposition and cross-tick candidate cache are *invisible* in the result:
every ``update`` must return the same canonical ``(m, 2)`` array a
from-scratch detection would.  These tests pin that

* on hypothesis-generated position/range clouds driven through several ticks
  of random drift (exercising cache reuse *and* rebuilds),
* on adversarial geometries — nodes exactly on strip boundaries and exactly
  at halo edges,
* with the worker pool on and off, and
* end to end: a full catalog scenario run with sharded connectivity + batch
  movement serialises byte-identically to the serial single-threaded
  reference (the PR's acceptance pin).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.builder import build_detector, build_scenario
from repro.experiments.catalog import make_scenario
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.world.connectivity import (
    BruteForceConnectivity,
    GridConnectivity,
    KDTreeConnectivity,
)
from repro.world.sharded import ShardedConnectivity, default_worker_count


def reference_pairs(positions, ranges):
    return BruteForceConnectivity().update(
        np.asarray(positions, dtype=float), np.asarray(ranges, dtype=float))


def assert_matches_reference(detector, positions, ranges):
    positions = np.asarray(positions, dtype=float)
    ranges = np.asarray(ranges, dtype=float)
    got = detector.update(positions, ranges)
    expected = reference_pairs(positions, ranges)
    assert got.dtype == np.int64
    assert np.array_equal(got, expected), (
        f"sharded diverged: got {got.tolist()}, expected {expected.tolist()}")


# ----------------------------------------------------------------- validation
def test_constructor_validation():
    with pytest.raises(ValueError):
        ShardedConnectivity(rebuild_margin=0.0)
    with pytest.raises(ValueError):
        ShardedConnectivity(rebuild_margin=-0.1)
    with pytest.raises(ValueError):
        ShardedConnectivity(workers=0)
    with pytest.raises(ValueError):
        ShardedConnectivity(shards_per_worker=0)
    assert ShardedConnectivity().workers == default_worker_count()
    assert ShardedConnectivity(workers=3).workers == 3


def test_degenerate_inputs_reset():
    detector = ShardedConnectivity()
    empty = detector.update(np.empty((0, 2)), np.empty(0))
    assert empty.shape == (0, 2)
    one = detector.update(np.array([[0.0, 0.0]]), np.array([5.0]))
    assert one.shape == (0, 2)
    zero_range = detector.update(np.zeros((3, 2)), np.zeros(3))
    assert zero_range.shape == (0, 2)
    detector.close()


# ------------------------------------------------------------------ hypothesis
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(2, 60),
    workers=st.sampled_from([1, 2, 3]),
    margin=st.sampled_from([0.2, 0.5, 1.0]),
    mixed_ranges=st.booleans(),
)
def test_hypothesis_parity_under_drift(seed, n, workers, margin, mixed_ranges):
    """Random clouds drift through several ticks; every tick must match."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, 500.0, size=(n, 2))
    if mixed_ranges:
        ranges = rng.uniform(5.0, 60.0, size=n)
    else:
        ranges = np.full(n, 40.0)
    detector = ShardedConnectivity(rebuild_margin=margin, workers=workers)
    try:
        for _ in range(6):
            assert_matches_reference(detector, positions, ranges)
            # drift below and occasionally above the slack margin
            positions = positions + rng.normal(
                0.0, margin * float(ranges.max()) / 2.0, size=(n, 2))
    finally:
        detector.close()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_hypothesis_strip_boundary_and_halo_edges(seed):
    """Nodes exactly on strip boundaries / halo edges must not be lost.

    The geometry is built from the detector's own parameters: with
    ``margin=0.5`` and ``max_range=10`` the candidate radius is 20, and two
    worker strips over a span of 80 put the boundary at x=40.  Nodes are
    placed exactly at the boundary, exactly one candidate radius past it
    (the halo edge), and just inside/outside of radio range across it.
    """
    rng = np.random.default_rng(seed)
    boundary = 40.0
    radius = 20.0  # max_range * (1 + 2 * margin)
    xs = [0.0, boundary - 5.0, boundary, boundary, boundary + 5.0,
          boundary + radius, boundary + radius, 80.0]
    ys = list(rng.uniform(0.0, 8.0, size=len(xs)))
    positions = np.column_stack((xs, ys))
    ranges = np.full(len(xs), 10.0)
    detector = ShardedConnectivity(rebuild_margin=0.5, workers=2,
                                   shards_per_worker=1)
    try:
        for _ in range(4):
            assert_matches_reference(detector, positions, ranges)
            positions = positions + rng.normal(0.0, 2.0,
                                               size=positions.shape)
    finally:
        detector.close()


def test_pairs_exactly_at_range_limit_are_included():
    # distance exactly equal to min(r_i, r_j): inclusive, like every detector
    positions = np.array([[0.0, 0.0], [10.0, 0.0], [30.0, 0.0]])
    ranges = np.array([10.0, 15.0, 20.0])
    detector = ShardedConnectivity(workers=1)
    got = detector.update(positions, ranges)
    assert got.tolist() == [[0, 1]]
    detector.close()


# -------------------------------------------------------------------- caching
def test_cache_reuse_and_rebuild_bookkeeping():
    rng = np.random.default_rng(7)
    positions = rng.uniform(0.0, 300.0, size=(80, 2))
    ranges = np.full(80, 25.0)
    detector = ShardedConnectivity(rebuild_margin=0.5, workers=1)
    detector.update(positions, ranges)
    assert detector.rebuilds == 1
    # sub-slack drift: the candidate cache is reused
    drifted = positions + 0.1
    assert_matches_reference(detector, drifted, ranges)
    assert detector.rebuilds == 1
    # over-slack jump: rebuild, still exact
    jumped = positions + 100.0
    assert_matches_reference(detector, jumped, ranges)
    assert detector.rebuilds == 2
    # node-count change: resynchronise
    assert_matches_reference(detector, jumped[:40], ranges[:40])
    assert detector.rebuilds == 3
    # range change: resynchronise
    assert_matches_reference(detector, jumped[:40], ranges[:40] * 2.0)
    assert detector.rebuilds == 4
    detector.reset()
    assert_matches_reference(detector, jumped[:40], ranges[:40] * 2.0)
    detector.close()


def test_find_pairs_legacy_api():
    positions = [(0.0, 0.0), (5.0, 0.0), (100.0, 0.0)]
    ranges = [10.0, 10.0, 10.0]
    detector = ShardedConnectivity(workers=1)
    assert detector.find_pairs(positions, ranges) == {(0, 1)}
    detector.close()


# ----------------------------------------------------------- builder / config
def test_build_detector_resolves_every_choice():
    base = ScenarioConfig.bench_scale()
    assert isinstance(build_detector(base), KDTreeConnectivity)
    assert isinstance(
        build_detector(base.with_overrides(detector="grid")), GridConnectivity)
    assert isinstance(
        build_detector(base.with_overrides(detector="brute")),
        BruteForceConnectivity)
    sharded = build_detector(base.with_overrides(
        detector="sharded", world_workers=3, rebuild_margin=0.75))
    assert isinstance(sharded, ShardedConnectivity)
    assert sharded.workers == 3
    assert sharded.rebuild_margin == 0.75
    kdtree = build_detector(base.with_overrides(rebuild_margin=0.1))
    assert kdtree.rebuild_margin == 0.1


def test_scenario_config_validates_world_fields():
    with pytest.raises(ValueError):
        ScenarioConfig.bench_scale(detector="voronoi")
    with pytest.raises(ValueError):
        ScenarioConfig.bench_scale(rebuild_margin=-1.0)
    with pytest.raises(ValueError):
        ScenarioConfig.bench_scale(world_workers=0)
    # zero slack is legal for kdtree (rebuild every tick) but rejected at
    # config time for sharded, where it would defeat the candidate cache
    assert ScenarioConfig.bench_scale(rebuild_margin=0.0).rebuild_margin == 0.0
    with pytest.raises(ValueError):
        ScenarioConfig.bench_scale(detector="sharded", rebuild_margin=0.0)


def test_catalog_exposes_non_default_detectors():
    assert make_scenario("rwp-10k").detector == "sharded"
    assert make_scenario("bench-grid").detector == "grid"
    # CLI-style --set override path
    config = make_scenario("bench", {"detector": "sharded",
                                     "world_workers": 2,
                                     "rebuild_margin": 0.4,
                                     "batch_movement": False})
    assert config.detector == "sharded"
    assert config.world_workers == 2
    assert config.batch_movement is False


def test_world_stop_closes_sharded_pool():
    config = make_scenario("bench", {
        "mobility": "random_waypoint", "num_nodes": 10, "sim_time": 30.0,
        "detector": "sharded", "world_workers": 2})
    built = build_scenario(config)
    built.run()
    detector = built.world.detector
    # force pool creation even if the tiny run stayed single-strip
    detector._executor()
    built.world.stop()
    assert detector._pool is None


# ------------------------------------------------------- full-scenario pinning
def full_run_payload(**overrides):
    config = make_scenario("bench", {
        "mobility": "random_waypoint", "protocol": "epidemic",
        "num_nodes": 50, "sim_time": 500.0, "name": "sharded-pin",
        **overrides})
    return json.dumps(run_scenario(config).as_dict(), sort_keys=True)


def test_sharded_scenario_report_byte_identical_to_serial_reference():
    """Acceptance pin: sharded + batch movement == serial single-threaded."""
    serial = full_run_payload(detector="kdtree", batch_movement=False)
    sharded = full_run_payload(detector="sharded", batch_movement=True,
                               world_workers=2)
    assert serial == sharded


def test_grid_scenario_report_byte_identical_to_serial_reference():
    serial = full_run_payload(detector="kdtree", batch_movement=False)
    grid = full_run_payload(detector="grid", batch_movement=True)
    assert serial == grid
