"""The columnar transfers phase (TransferEngine) against the reference loop.

Three layers of evidence, mirroring the PR5-PR8 discipline:

* hypothesis parity — random link/enqueue/teardown scripts driven through a
  pair of worlds that differ only in ``transfer_engine``, asserting
  identical completion order, byte accounting (including aborted-transfer
  ``bytes_left``) and final queue state,
* full-scenario pins — byte-identical canonical reports engine-on vs
  engine-off for every routing family the suite exercises,
* resume equality — a checkpoint taken *mid-transfer* with the engine on
  restores invisibly (the engine's columns are part of the snapshot).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.scenario import ScenarioConfig
from repro.net.connection import TransferState
from repro.net.engine import TransferEngine
from repro.sim.engine import Simulator
from repro.testing import (assert_resume_equality, canonical_report_bytes,
                           inject_message, make_trace)
from repro.traces.contact_trace import ContactTrace
from repro.traces.replay import build_trace_world
from repro.world.world import World


# ------------------------------------------------------------------ helpers
def empty_world(num_nodes=4, *, transfer_engine=True, transmit_speed=1000.0,
                protocol="epidemic", seed=9):
    """A trace-replay world with no prescribed contacts: the test drives
    link events and phases by hand."""
    simulator, world = build_trace_world(
        ContactTrace([]), protocol=protocol, num_nodes=num_nodes, seed=seed,
        transmit_speed=transmit_speed, transfer_engine=transfer_engine,
        buffer_capacity=16 * 1024 * 1024)
    return simulator, world


def head_bytes(world, connection):
    """Authoritative remaining bytes of the head transfer, either mode."""
    engine = world.transfer_engine
    if engine is not None and connection.has_queued:
        try:
            return engine.head_bytes_left(connection)
        except KeyError:
            pass
    return connection.queued_transfers[0].bytes_left if connection.has_queued \
        else None


def queue_state(world):
    """Comparable snapshot of every live connection's transfer queue."""
    state = {}
    for key, connection in world._connections.items():
        rows = []
        for index, transfer in enumerate(connection.queued_transfers):
            bytes_left = (head_bytes(world, connection) if index == 0
                          else transfer.bytes_left)
            rows.append((transfer.message.message_id,
                         transfer.receiver.node_id, bytes_left,
                         transfer.state.value))
        state[key] = rows
    return state


def relayed_tuples(world):
    return [(r.message_id, r.from_node, r.to_node, r.time, r.copies)
            for r in world.stats.relayed_records]


def aborted_tuples(world):
    return [(r.message_id, r.from_node, r.to_node, r.time, r.bytes_left)
            for r in world.stats.aborted_records]


# ------------------------------------------------------- hypothesis parity
_pair = st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
    lambda p: p[0] != p[1]).map(lambda p: (min(p), max(p)))

_step = st.fixed_dictionaries({
    "links": st.lists(st.tuples(_pair, st.booleans()), max_size=3),
    "messages": st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.integers(100, 60_000)).filter(lambda m: m[0] != m[1]),
        max_size=2),
    "dt": st.sampled_from([0.25, 0.5, 1.0, 2.0]),
})


@settings(deadline=None, max_examples=30)
@given(speed=st.sampled_from([100.0, 333.0, 1_000.0, 25_000.0]),
       steps=st.lists(_step, min_size=3, max_size=25))
def test_random_scripts_reference_vs_engine(speed, steps):
    """Random enqueue/teardown/dt scripts: both modes must complete the
    same transfers in the same order with the same byte accounting."""

    def run(transfer_engine):
        simulator, world = empty_world(transmit_speed=speed,
                                       transfer_engine=transfer_engine)
        live = set()
        now = 0.0
        counter = 0
        for step in steps:
            now += step["dt"]
            for pair, up in step["links"]:
                if up and pair not in live:
                    live.add(pair)
                    world._link_up(pair, now)
                elif not up and pair in live:
                    live.discard(pair)
                    world._link_down(pair, now)
            for src, dst, size in step["messages"]:
                counter += 1
                inject_message(world, src, dst, now=now, size=size,
                               ttl=100_000.0, message_id=f"M{counter}")
            world._advance_transfers(now, step["dt"])
            world._update_routers(now)
        return world

    engine_world = run(True)
    reference_world = run(False)

    assert relayed_tuples(engine_world) == relayed_tuples(reference_world)
    assert aborted_tuples(engine_world) == aborted_tuples(reference_world)
    s_on, s_off = engine_world.stats, reference_world.stats
    assert s_on.transfers_completed == s_off.transfers_completed
    assert s_on.transfers_aborted == s_off.transfers_aborted
    assert s_on.bytes_delivered == s_off.bytes_delivered
    assert queue_state(engine_world) == queue_state(reference_world)

    # the engine invariant: every row is an up connection with queued
    # transfers, and every such connection either holds a row or is still
    # awaiting ingestion in _newly_active (announced after the last sweep)
    engine = engine_world.transfer_engine
    rows = {c.established_seq for c in engine.connections()}
    queued = {c.established_seq for c in engine_world._connections.values()
              if c.is_up and c.has_queued}
    announced = {c.established_seq for c in engine_world._newly_active}
    assert rows <= queued
    assert queued - rows <= announced
    # with the engine on the legacy active set must stay empty
    assert not engine_world._active_transfers


# ------------------------------------------------------ full-scenario pins
@pytest.mark.parametrize("protocol",
                         ["direct", "epidemic", "spray-and-wait", "prophet"])
def test_report_byte_identical_engine_on_vs_off(protocol):
    from dataclasses import replace

    from repro.experiments.runner import run_scenario

    config = ScenarioConfig.bench_scale(
        protocol=protocol, num_nodes=40, seed=7, sim_time=900.0,
        mobility="random_waypoint", name=f"engine-pin-{protocol}")
    on = canonical_report_bytes(run_scenario(config))
    off = canonical_report_bytes(
        run_scenario(replace(config, transfer_engine=False)))
    assert on == off


def mid_transfer_config():
    """Epidemic under load slow enough that transfers span many ticks."""
    return ScenarioConfig.bench_scale(
        protocol="epidemic", num_nodes=30, seed=11, sim_time=120.0,
        mobility="random_waypoint", name="engine-resume",
        transmit_range=120.0, transmit_speed=5_000.0,
        message_size=100_000, message_interval=(2.0, 4.0))


def test_resume_equality_through_mid_transfer_checkpoint():
    from repro.experiments.builder import build_scenario

    config = mid_transfer_config()
    checkpoint_at = 60.0
    # precondition: the engine really is mid-transfer at the boundary —
    # otherwise this test silently degrades to the cheap empty-engine case
    built = build_scenario(config)
    try:
        built.simulator.run(until=checkpoint_at)
        assert built.world.transfer_engine is not None
        assert len(built.world.transfer_engine) > 0
    finally:
        built.world.stop()
    assert_resume_equality(config, checkpoint_times=[checkpoint_at])


def test_restored_engine_is_rewired_to_restored_connections():
    from repro.checkpoint import load_checkpoint_bytes, save_checkpoint_bytes
    from repro.experiments.builder import build_scenario

    built = build_scenario(mid_transfer_config())
    try:
        built.simulator.run(until=60.0)
        blob = save_checkpoint_bytes(built.world)
    finally:
        built.world.stop()
    restored = load_checkpoint_bytes(blob).world
    try:
        engine = restored.transfer_engine
        assert len(engine) > 0
        for connection in engine.connections():
            # identity, not equality: rows must point at the restored
            # world's own connection objects, and the per-connection seams
            # must point back at the restored engine/sink
            assert restored._connections[connection.key] is connection
            assert connection.engine is engine
            assert connection.activity_sink is restored._newly_active
            assert engine.head_bytes_left(connection) <= \
                connection.queued_transfers[0].message.size
    finally:
        restored.stop()


# ------------------------------------------------------------- engine units
def test_engine_requires_flat_tick():
    with pytest.raises(ValueError):
        World(Simulator(seed=1), flat_tick=False, router_skiplist=False,
              router_soa=False, transfer_engine=True)
    with pytest.raises(ValueError):
        ScenarioConfig(name="x", flat_tick=False, router_skiplist=False,
                       router_soa=False, transfer_engine=True)


def test_stale_announcement_is_ignored():
    """enqueue -> teardown before any sweep: the activity-sink announcement
    is stale and must not attach a row (nor resurrect the torn-down link)."""
    simulator, world = empty_world()
    world._link_up((0, 1), 0.0)
    inject_message(world, 0, 1, size=5_000, message_id="MX")
    world._update_routers(0.0)  # epidemic enqueues on the live link
    assert world._newly_active
    world._link_down((0, 1), 0.5)
    world._advance_transfers(1.0, 1.0)
    assert len(world.transfer_engine) == 0
    assert not world._newly_active


def test_pooled_reuse_under_new_sequence_number():
    """A torn-down connection object recycled for a new link must get a
    fresh row keyed by the new established_seq."""
    simulator, world = empty_world(transmit_speed=100.0)
    world._link_up((0, 1), 0.0)
    first = world._connections[(0, 1)]
    first_seq = first.established_seq
    inject_message(world, 0, 1, size=1_000, message_id="MA")
    world._update_routers(0.0)
    world._advance_transfers(1.0, 1.0)
    assert len(world.transfer_engine) == 1
    world._link_down((0, 1), 1.5)
    assert len(world.transfer_engine) == 0
    world._link_up((0, 2), 2.0)
    second = world._connections[(0, 2)]
    assert second is first  # pooled reuse
    assert second.established_seq > first_seq
    inject_message(world, 0, 2, size=1_000, message_id="MB")
    world._update_routers(2.0)
    world._advance_transfers(3.0, 1.0)
    engine = world.transfer_engine
    assert [c.established_seq for c in engine.connections()] \
        == [second.established_seq]
    assert engine.head_bytes_left(second) == pytest.approx(900.0)


def test_multi_completion_single_tick_matches_reference():
    """A fast link draining several queued transfers in one tick must
    complete them all, in order, through the exact replay."""

    def run(transfer_engine):
        simulator, world = empty_world(transmit_speed=1_000_000.0,
                                       transfer_engine=transfer_engine)
        world._link_up((0, 1), 0.0)
        for index in range(5):
            inject_message(world, 0, 1, size=10_000,
                           message_id=f"M{index}")
        world._update_routers(0.0)
        world._advance_transfers(1.0, 1.0)
        return world

    on, off = run(True), run(False)
    assert relayed_tuples(on) == relayed_tuples(off)
    assert on.stats.transfers_completed == 5
    assert len(on.transfer_engine) == 0


def test_exact_budget_boundary_leaves_next_head_pending():
    """bytes_left exactly equal to the tick budget: the head completes with
    zero leftover budget and the next head stays PENDING until the *next*
    sweep — the reference loop's timing, bit for bit."""

    def run(transfer_engine):
        simulator, world = empty_world(transmit_speed=1_000.0,
                                       transfer_engine=transfer_engine)
        world._link_up((0, 1), 0.0)
        inject_message(world, 0, 1, size=1_000, message_id="MA")
        inject_message(world, 0, 1, size=500, message_id="MB")
        world._update_routers(0.0)
        world._advance_transfers(1.0, 1.0)  # budget 1000 == MA exactly
        return world

    for world in (run(True), run(False)):
        connection = world._connections[(0, 1)]
        assert world.stats.transfers_completed == 1
        (transfer,) = connection.queued_transfers
        assert transfer.message.message_id == "MB"
        assert transfer.state is TransferState.PENDING
        assert head_bytes(world, connection) == pytest.approx(500.0)
        # the deferred start: the next sweep marks it IN_PROGRESS with
        # started_at = that tick's now
        world._advance_transfers(2.0, 1.0)
        assert world.stats.transfers_completed == 2


def test_engine_column_is_authoritative_between_sweeps():
    simulator, world = empty_world(transmit_speed=100.0)
    world._link_up((0, 1), 0.0)
    inject_message(world, 0, 1, size=1_000, message_id="MA")
    world._update_routers(0.0)
    world._advance_transfers(1.0, 1.0)
    connection = world._connections[(0, 1)]
    engine = world.transfer_engine
    assert engine.head_bytes_left(connection) == pytest.approx(900.0)
    # the Transfer object deliberately lags (columns are authoritative)...
    assert connection.queued_transfers[0].bytes_left == pytest.approx(1_000.0)
    # ...until a seam flushes it: tear-down hands the exact count to stats
    world._link_down((0, 1), 2.0)
    (record,) = world.stats.aborted_records
    assert record.bytes_left == pytest.approx(900.0)
    assert len(engine) == 0


def test_engine_grows_past_initial_capacity():
    simulator, world = empty_world(num_nodes=40, transmit_speed=10.0)
    # 20 disjoint busy links would not exceed capacity; grow it artificially
    # small instead to exercise _grow under sweep conditions
    world.transfer_engine._bytes_left = world.transfer_engine._bytes_left[:2]
    world.transfer_engine._bitrate = world.transfer_engine._bitrate[:2]
    world.transfer_engine._seq = world.transfer_engine._seq[:2]
    world.transfer_engine._depth = world.transfer_engine._depth[:2]
    for index in range(6):
        pair = (2 * index, 2 * index + 1)
        world._link_up(pair, 0.0)
        inject_message(world, pair[0], pair[1], size=10_000,
                       message_id=f"M{index}")
    world._update_routers(0.0)
    world._advance_transfers(1.0, 1.0)
    assert len(world.transfer_engine) == 6
    assert len(world.transfer_engine._bytes_left) >= 6


# ------------------------------------------------- is_transferring index
def test_is_transferring_index_tracks_enqueue_advance_teardown():
    simulator, world = empty_world(transmit_speed=1_000.0)
    world._link_up((0, 1), 0.0)
    inject_message(world, 0, 1, size=1_000, message_id="MA")
    inject_message(world, 0, 1, size=2_000, message_id="MB")
    world._update_routers(0.0)
    connection = world._connections[(0, 1)]
    assert connection.is_transferring("MA")
    assert connection.is_transferring("MA", to_node_id=1)
    assert not connection.is_transferring("MA", to_node_id=0)
    assert connection.is_transferring("MB")
    assert not connection.is_transferring("MC")
    world._advance_transfers(1.0, 1.0)  # completes MA exactly
    assert not connection.is_transferring("MA")
    assert connection.is_transferring("MB", to_node_id=1)
    world._link_down((0, 1), 2.0)
    assert not connection.is_transferring("MB")
    assert connection._queued_ids == {} and connection._queued_pairs == {}


def test_is_transferring_refcounts_duplicate_ids():
    """Two queued transfers of the same message to different receivers:
    the id stays indexed until *both* leave the queue."""
    from repro.net.connection import Connection, Transfer

    simulator, world = empty_world(num_nodes=3, transmit_speed=1_000.0)
    world._link_up((0, 1), 0.0)
    connection = world._connections[(0, 1)]
    message = inject_message(world, 0, 2, size=800, message_id="MD")
    node0, node1 = world.get_node(0), world.get_node(1)
    replica = node0.buffer.get("MD")
    connection.enqueue(Transfer(replica, node0, node1))
    connection.enqueue(Transfer(replica, node1, node0))
    assert connection.is_transferring("MD", to_node_id=1)
    assert connection.is_transferring("MD", to_node_id=0)
    world._advance_transfers(1.0, 1.0)  # first completes (800 <= 1000)
    assert not connection.is_transferring("MD", to_node_id=1)
    assert connection.is_transferring("MD")  # second still queued
    assert connection.is_transferring("MD", to_node_id=0)
