"""Unit tests for trace replay worlds."""

import pytest

from repro.testing import inject_message, make_contact_plan
from repro.traces.contact_trace import ContactTrace
from repro.traces.replay import build_trace_world


def test_replay_creates_connections_per_trace():
    trace = make_contact_plan([(10.0, 30.0, 0, 1), (50.0, 80.0, 1, 2)])
    simulator, world = build_trace_world(trace, protocol="direct")
    simulator.run(until=20.0)
    assert world.connection_between(0, 1) is not None
    assert world.connection_between(1, 2) is None
    simulator.run(until=40.0)
    assert world.connection_between(0, 1) is None
    simulator.run(until=60.0)
    assert world.connection_between(1, 2) is not None
    assert world.stats.contacts == 2


def test_replay_world_routes_messages_end_to_end():
    trace = make_contact_plan([(10.0, 40.0, 0, 1), (100.0, 140.0, 1, 2)])
    simulator, world = build_trace_world(trace, protocol="epidemic")
    inject_message(world, source=0, destination=2)
    simulator.run(until=200.0)
    assert world.stats.delivered == 1


def test_num_nodes_must_cover_trace_ids():
    trace = make_contact_plan([(10.0, 20.0, 0, 5)])
    with pytest.raises(ValueError):
        build_trace_world(trace, num_nodes=3)
    simulator, world = build_trace_world(trace, num_nodes=6)
    assert world.num_nodes == 6


def test_events_for_unknown_nodes_are_ignored():
    # build the world manually with only nodes 0 and 1; the trace also talks
    # about nodes 7 and 8, whose events must be skipped by the replay
    from repro.mobility.stationary import StationaryMovement
    from repro.routing.registry import create_router
    from repro.sim.engine import Simulator
    from repro.traces.replay import TraceReplayWorld
    from repro.world.node import DTNNode

    trace = make_contact_plan([(10.0, 20.0, 0, 1), (15.0, 25.0, 7, 8)])
    simulator = Simulator(seed=1)
    world = TraceReplayWorld(simulator, trace)
    for node_id in (0, 1):
        node = DTNNode(node_id, StationaryMovement((0.0, 0.0)),
                       simulator.random.python(f"n{node_id}"))
        create_router("direct").attach(node, world)
        world.add_node(node)
    simulator.run(until=30.0)
    assert world.stats.contacts == 1


def test_communities_are_attached_to_nodes():
    trace = make_contact_plan([(10.0, 20.0, 0, 1)])
    communities = {0: 0, 1: 1}
    simulator, world = build_trace_world(trace, protocol="direct",
                                         communities=communities)
    assert world.community_of(0) == 0
    assert world.community_of(1) == 1


def test_empty_trace_runs_without_contacts():
    simulator, world = build_trace_world(ContactTrace([]), num_nodes=3)
    simulator.run(until=50.0)
    assert world.stats.contacts == 0
