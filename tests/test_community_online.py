"""Unit + property tests for the online community tracker (PR4 tentpole).

The load-bearing property: at *every* staleness flush the tracker's cached
assignment is identical to a from-scratch detection over the contacts
accumulated so far — the incremental edge store and the version/staleness
machinery must never change a detection result, only skip redundant runs.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.community.assignment import CommunityAssignment
from repro.community.kclique import k_clique_communities
from repro.community.newman import newman_modularity_communities
from repro.community.online import (
    DETECTION_ALGORITHMS,
    OnlineCommunityTracker,
    assignment_from_groups,
    count_moved_nodes,
)
from repro.metrics.collector import StatsCollector


# ------------------------------------------------------- assignment_from_groups
def test_assignment_from_groups_labels_and_singletons():
    assignment = assignment_from_groups([{0, 1}, {2, 3}], num_nodes=6)
    assert assignment.community_of(0) == assignment.community_of(1) == 0
    assert assignment.community_of(2) == assignment.community_of(3) == 1
    # unclaimed nodes become singletons with fresh labels, in node order
    assert assignment.community_of(4) == 2
    assert assignment.community_of(5) == 3
    assert assignment.num_communities == 4


def test_assignment_from_groups_overlap_and_out_of_range():
    # overlap resolves to the first group; out-of-range members are ignored
    assignment = assignment_from_groups([{0, 1}, {1, 2}, {9}], num_nodes=3)
    assert assignment.community_of(1) == 0
    assert assignment.community_of(2) == 1
    with pytest.raises(ValueError):
        assignment_from_groups([], num_nodes=0)


# ---------------------------------------------------------------- construction
def test_tracker_validation():
    with pytest.raises(ValueError):
        OnlineCommunityTracker(0)
    with pytest.raises(ValueError):
        OnlineCommunityTracker(4, algorithm="louvain")
    with pytest.raises(ValueError):
        OnlineCommunityTracker(4, staleness=-1.0)
    with pytest.raises(ValueError):
        OnlineCommunityTracker(4).observe(2, 2)


def test_initial_assignment_is_all_singletons():
    tracker = OnlineCommunityTracker(4, staleness=100.0)
    assignment = tracker.assignment(0.0)  # first query detects immediately
    assert tracker.detections == 1
    assert assignment.num_communities == 4
    assert len({assignment.community_of(n) for n in range(4)}) == 4


# ------------------------------------------------------------------- staleness
def test_redetection_requires_version_change_and_staleness():
    tracker = OnlineCommunityTracker(6, algorithm="newman", staleness=100.0)
    tracker.assignment(0.0)
    assert tracker.detections == 1
    # no new edges: queries never re-detect, however much time passes
    tracker.assignment(1000.0)
    assert tracker.detections == 1
    # new edge inside the staleness budget: still served from cache
    tracker.observe(0, 1)
    tracker.assignment(50.0)
    assert tracker.detections == 1
    # budget spent and version advanced: re-detect
    tracker.assignment(150.0)
    assert tracker.detections == 2
    # unchanged version afterwards: cached again
    tracker.assignment(1e6)
    assert tracker.detections == 2


def test_zero_staleness_redetects_on_every_change():
    tracker = OnlineCommunityTracker(4, staleness=0.0)
    tracker.assignment(0.0)
    tracker.observe(0, 1)
    tracker.assignment(0.0)
    tracker.observe(0, 1)
    tracker.assignment(0.0)
    assert tracker.detections == 3


def test_assignment_revision_bumps_only_on_change():
    tracker = OnlineCommunityTracker(6, algorithm="newman", staleness=0.0)
    tracker.assignment(0.0)
    first = tracker.assignment_revision
    # a lone edge between two singletons merges them: revision advances
    for _ in range(3):
        tracker.observe(0, 1)
    tracker.assignment(1.0)
    assert tracker.assignment_revision > first
    revision = tracker.assignment_revision
    # reinforcing the same structure changes nothing: revision stays
    for _ in range(3):
        tracker.observe(0, 1)
    tracker.assignment(2.0)
    assert tracker.detections >= 3
    assert tracker.assignment_revision == revision


def test_count_moved_nodes_single_migration():
    # one node migrating between two communities counts as exactly 1,
    # not as every member of both touched communities
    old = assignment_from_groups([set(range(10)), set(range(10, 20))], 20)
    new = assignment_from_groups([set(range(9)), set(range(9, 20))], 20)
    assert count_moved_nodes(old, new, 20) == 1
    assert count_moved_nodes(old, old, 20) == 0


def test_reassignment_counts_moves_not_label_shifts():
    tracker = OnlineCommunityTracker(6, algorithm="newman", staleness=0.0)
    for _ in range(3):
        tracker.observe(0, 1)
    tracker.flush(1.0)
    revision = tracker.assignment_revision
    # a *larger* group forms among other nodes; it sorts first and shifts
    # every later label, but only the mergers changed community: the new
    # group matches node 2's old singleton, so nodes 3 and 4 moved into it
    for a, b in ((2, 3), (3, 4), (2, 4)):
        for _ in range(3):
            tracker.observe(a, b)
    stats = StatsCollector()
    tracker.stats = stats
    assignment = tracker.flush(2.0)
    assert sorted(assignment.members(assignment.community_of(2))) == [2, 3, 4]
    assert sorted(assignment.members(assignment.community_of(0))) == [0, 1]
    assert stats.community_reassignments == 2
    assert tracker.assignment_revision == revision + 1


# ------------------------------------------------------------ stats reporting
def test_detection_overhead_reported_to_collector():
    stats = StatsCollector()
    tracker = OnlineCommunityTracker(5, staleness=0.0, stats=stats)
    tracker.assignment(0.0)
    tracker.observe(1, 2)
    tracker.assignment(1.0)
    assert stats.community_detections == 2
    assert stats.community_detection_seconds >= 0.0
    assert stats.community_reassignments >= 1


# ------------------------------------------------------------- flush parity
def _from_scratch(weights, num_nodes, algorithm, min_weight, k,
                  max_communities):
    """Independent from-scratch detection over an edge-weight multiset."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for (a, b), weight in weights.items():
        graph.add_edge(a, b, weight=weight)
    if algorithm == "kclique":
        groups = k_clique_communities(graph, k=k, min_weight=min_weight)
    else:
        graph.remove_edges_from(
            [(a, b) for (a, b), w in weights.items() if w < min_weight])
        groups = newman_modularity_communities(
            graph, max_communities=max_communities)
    return assignment_from_groups([set(g) for g in groups], num_nodes)


@settings(max_examples=40, deadline=None)
@given(
    algorithm=st.sampled_from(DETECTION_ALGORITHMS),
    num_nodes=st.integers(min_value=2, max_value=12),
    contacts=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=60),
    flush_points=st.sets(st.integers(0, 59), max_size=5),
    min_weight=st.sampled_from([0.0, 1.0, 2.0]),
)
def test_tracker_matches_from_scratch_detection_at_every_flush(
        algorithm, num_nodes, contacts, flush_points, min_weight):
    tracker = OnlineCommunityTracker(num_nodes, algorithm=algorithm,
                                     staleness=10.0, min_weight=min_weight)
    weights = {}
    now = 0.0
    for index, (a, b) in enumerate(contacts):
        a, b = a % num_nodes, b % num_nodes
        if a == b:
            continue
        now += 1.0
        tracker.observe(a, b)
        key = (min(a, b), max(a, b))
        weights[key] = weights.get(key, 0.0) + 1.0
        if index in flush_points:
            flushed = tracker.flush(now)
            expected = _from_scratch(weights, num_nodes, algorithm,
                                     min_weight, tracker.k,
                                     tracker.max_communities)
            assert flushed.as_dict() == expected.as_dict()
            # the staleness-gated query must serve exactly the flushed result
            assert tracker.assignment(now).as_dict() == flushed.as_dict()
    final = tracker.flush(now + 1.0)
    expected = _from_scratch(weights, num_nodes, algorithm, min_weight,
                             tracker.k, tracker.max_communities)
    assert final.as_dict() == expected.as_dict()
    assert isinstance(final, CommunityAssignment)
    assert sorted(final.nodes()) == list(range(num_nodes))
