"""Stateful-detector and position-store coverage for the vectorized world core.

The detectors carry acceleration structures across ticks (k-d tree snapshot,
grid buckets); these tests drive one detector *instance* through many ticks
of moving nodes and cross-check every tick against a fresh brute-force
detection, with non-uniform ranges and changing node counts.
"""

import numpy as np
import pytest

from repro.mobility.stationary import StationaryMovement
from repro.routing.direct import DirectDeliveryRouter
from repro.sim.engine import Simulator
from repro.world.connectivity import (
    BruteForceConnectivity,
    GridConnectivity,
    KDTreeConnectivity,
)
from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.positions import PositionStore
from repro.world.world import World

STATEFUL = [KDTreeConnectivity, GridConnectivity, BruteForceConnectivity]


def reference_pairs(positions, ranges):
    return BruteForceConnectivity().find_pairs(positions, ranges)


def as_set(pairs: np.ndarray):
    return {(int(i), int(j)) for i, j in pairs}


@pytest.mark.parametrize("detector_cls", STATEFUL, ids=lambda c: c.__name__)
def test_stateful_updates_track_moving_nodes(detector_cls):
    rng = np.random.default_rng(42)
    n = 80
    detector = detector_cls()
    positions = rng.uniform(0, 400, size=(n, 2))
    ranges = rng.uniform(10, 70, size=n)  # non-uniform per-node ranges
    for tick in range(40):
        # small random steps, with an occasional teleport burst to force the
        # k-d tree past its slack margin
        step = rng.normal(0, 2.0, size=(n, 2))
        if tick % 11 == 10:
            step[rng.integers(0, n, size=5)] += rng.uniform(-150, 150, size=(5, 2))
        positions += step
        result = detector.update(positions, ranges)
        assert result.dtype == np.int64 and result.ndim == 2 and result.shape[1] == 2
        assert as_set(result) == reference_pairs(positions, ranges)


@pytest.mark.parametrize("detector_cls", STATEFUL, ids=lambda c: c.__name__)
def test_update_result_is_canonically_sorted(detector_cls):
    rng = np.random.default_rng(9)
    positions = rng.uniform(0, 120, size=(50, 2))
    ranges = rng.uniform(15, 60, size=50)
    pairs = detector_cls().update(positions, ranges)
    assert len(pairs) > 0
    assert np.all(pairs[:, 0] < pairs[:, 1])
    codes = pairs[:, 0] * 1_000_000 + pairs[:, 1]
    assert np.all(np.diff(codes) > 0)  # strictly increasing = sorted, unique


@pytest.mark.parametrize("detector_cls", STATEFUL, ids=lambda c: c.__name__)
def test_stateful_detector_survives_node_count_changes(detector_cls):
    rng = np.random.default_rng(5)
    detector = detector_cls()
    for n in (30, 45, 12, 2, 1, 0, 60):
        positions = rng.uniform(0, 200, size=(n, 2))
        ranges = rng.uniform(10, 50, size=n)
        assert detector.find_pairs(positions, ranges) == \
            reference_pairs(positions, ranges)


@pytest.mark.parametrize("detector_cls", STATEFUL, ids=lambda c: c.__name__)
def test_stateful_detector_handles_growing_ranges(detector_cls):
    # cell size / query radius changes between ticks must resync state
    rng = np.random.default_rng(17)
    detector = detector_cls()
    positions = rng.uniform(0, 300, size=(40, 2))
    for scale in (10.0, 80.0, 25.0):
        ranges = rng.uniform(0.5 * scale, scale, size=40)
        assert detector.find_pairs(positions, ranges) == \
            reference_pairs(positions, ranges)


def test_kdtree_skips_rebuilds_for_small_displacements():
    rng = np.random.default_rng(3)
    detector = KDTreeConnectivity(rebuild_margin=0.25)
    positions = rng.uniform(0, 500, size=(100, 2))
    ranges = np.full(100, 40.0)
    ticks = 30
    for _ in range(ticks):
        positions += rng.normal(0, 0.3, size=(100, 2))  # well under the margin
        detector.update(positions, ranges)
    assert detector.rebuilds < ticks / 2  # most ticks reuse the tree
    # results stay exact even while reusing
    assert detector.find_pairs(positions, ranges) == reference_pairs(positions, ranges)


def test_kdtree_zero_margin_matches_seed_behaviour():
    rng = np.random.default_rng(3)
    detector = KDTreeConnectivity(rebuild_margin=0.0)
    positions = rng.uniform(0, 300, size=(50, 2))
    ranges = rng.uniform(10, 60, size=50)
    for _ in range(5):
        positions += rng.normal(0, 5.0, size=(50, 2))
        assert detector.find_pairs(positions, ranges) == \
            reference_pairs(positions, ranges)
    assert detector.rebuilds == 5


# ---------------------------------------------------------------- PositionStore
def test_position_store_add_row_and_view():
    store = PositionStore(capacity=2)
    assert len(store) == 0
    assert store.view().shape == (0, 2)
    i = store.add((1.0, 2.0))
    j = store.add((3.0, 4.0))
    assert (i, j) == (0, 1)
    assert np.allclose(store.view(), [[1.0, 2.0], [3.0, 4.0]])
    row = store.row(1)
    row[:] = (9.0, 9.0)  # row views write through to the matrix
    assert np.allclose(store.view()[1], (9.0, 9.0))


def test_position_store_grows_and_preserves_rows():
    store = PositionStore(capacity=2)
    for k in range(10):
        store.add((float(k), float(-k)))
    assert len(store) == 10
    assert store.capacity >= 10
    assert np.allclose(store.view()[:, 0], np.arange(10.0))
    with pytest.raises(IndexError):
        store.row(10)


def test_world_positions_is_live_zero_copy_view():
    simulator = Simulator(seed=1)
    world = World(simulator)
    # enough nodes to force the store to grow past its initial capacity
    for node_id in range(70):
        node = DTNNode(node_id, StationaryMovement((float(node_id), 0.0)),
                       simulator.random.python(f"n{node_id}"),
                       interface=Interface(transmit_range=0.4))
        DirectDeliveryRouter().attach(node, world)
        world.add_node(node)
    positions = world.positions()
    assert positions.shape == (70, 2)
    assert np.allclose(positions[:, 0], np.arange(70.0))
    # every node's position is a view into the same backing store, even after
    # growth re-allocated the array
    for index, node in enumerate(world.nodes):
        assert node.position.base is world._positions.data
        assert np.shares_memory(node.position, positions[index])
    # a teleport shows up in the world matrix without calling positions() again
    world.get_node(3).follower.teleport((123.0, 321.0))
    assert np.allclose(positions[3], (123.0, 321.0))
