"""Unit tests for contact graphs and the three community-detection algorithms."""

import networkx as nx
import pytest

from repro.community.assignment import CommunityAssignment
from repro.community.graph import aggregate_contact_graph, contact_graph_from_history
from repro.community.kclique import k_clique_communities
from repro.community.local import local_community
from repro.community.newman import modularity, newman_modularity_communities
from repro.contacts.history import ContactHistory
from repro.metrics.events import ContactRecord
from repro.traces.generators import community_structured_trace


def two_cliques_graph():
    """Two 4-cliques joined by a single bridge edge."""
    graph = nx.Graph()
    for base in (0, 4):
        members = list(range(base, base + 4))
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j, weight=5.0)
    graph.add_edge(3, 4, weight=1.0)
    return graph


# ---------------------------------------------------------------- contact graphs
def test_contact_graph_from_histories():
    h0 = ContactHistory(owner_id=0)
    h1 = ContactHistory(owner_id=1)
    for t in (10.0, 30.0, 70.0):
        h0.record_contact(1, t)
        h1.record_contact(0, t)
    h0.record_contact(2, 40.0)
    graph = contact_graph_from_history([h0, h1])
    assert graph.has_edge(0, 1)
    assert graph[0][1]["weight"] == 3
    assert graph[0][1]["mean_interval"] == pytest.approx(30.0)
    assert graph.has_edge(0, 2)
    # min_contacts filters weak edges
    filtered = contact_graph_from_history([h0, h1], min_contacts=2)
    assert filtered.has_edge(0, 1)
    assert not filtered.has_edge(0, 2)


def test_aggregate_contact_graph_counts_and_durations():
    records = [
        ContactRecord(0, 1, 10.0, 30.0),
        ContactRecord(0, 1, 50.0, 60.0),
        ContactRecord(1, 2, 5.0, 10.0),
    ]
    by_count = aggregate_contact_graph(records, num_nodes=4)
    assert by_count[0][1]["weight"] == 2
    assert by_count[1][2]["weight"] == 1
    assert 3 in by_count.nodes  # isolated node still present
    by_duration = aggregate_contact_graph(records, use_duration=True)
    assert by_duration[0][1]["weight"] == pytest.approx(30.0)


# --------------------------------------------------------------------- k-clique
def test_kclique_finds_the_two_cliques():
    communities = k_clique_communities(two_cliques_graph(), k=3)
    as_sets = [frozenset(c) for c in communities]
    assert frozenset({0, 1, 2, 3}) in as_sets
    assert frozenset({4, 5, 6, 7}) in as_sets


def test_kclique_min_weight_filters_bridge():
    graph = two_cliques_graph()
    # with k=2 and no weight filter the bridge merges everything
    merged = k_clique_communities(graph, k=2)
    assert len(merged) == 1
    # filtering out the weak bridge edge separates the cliques again
    separated = k_clique_communities(graph, k=2, min_weight=2.0)
    assert len(separated) == 2


def test_kclique_validation_and_empty():
    with pytest.raises(ValueError):
        k_clique_communities(nx.Graph(), k=1)
    assert k_clique_communities(nx.path_graph(4), k=4) == []


# -------------------------------------------------------------------- modularity
def test_modularity_prefers_true_partition():
    graph = two_cliques_graph()
    true_partition = [{0, 1, 2, 3}, {4, 5, 6, 7}]
    lumped = [set(range(8))]
    assert modularity(graph, true_partition) > modularity(graph, lumped)
    assert modularity(nx.Graph(), [set()]) == 0.0


def test_newman_recovers_two_communities():
    communities = newman_modularity_communities(two_cliques_graph())
    assert len(communities) == 2
    assert {0, 1, 2, 3} in communities
    assert {4, 5, 6, 7} in communities


def test_newman_max_communities_cap():
    graph = two_cliques_graph()
    capped = newman_modularity_communities(graph, max_communities=1)
    assert len(capped) == 1
    assert capped[0] == set(range(8))


def test_newman_empty_graph():
    assert newman_modularity_communities(nx.Graph()) == []


# ------------------------------------------------------------------------ local
def test_local_community_grows_around_seed():
    graph = two_cliques_graph()
    community = local_community(graph, seed=0)
    assert community == {0, 1, 2, 3}
    community = local_community(graph, seed=5)
    assert community == {4, 5, 6, 7}


def test_local_community_max_size_and_validation():
    graph = two_cliques_graph()
    capped = local_community(graph, seed=0, max_size=2)
    assert len(capped) <= 2 and 0 in capped
    with pytest.raises(KeyError):
        local_community(graph, seed=99)
    with pytest.raises(ValueError):
        local_community(graph, seed=0, max_size=0)


# ------------------------------------------------- end-to-end with synthetic trace
def test_detection_recovers_ground_truth_from_synthetic_trace():
    trace, truth = community_structured_trace(
        num_nodes=12, num_communities=3, duration=4000.0,
        intra_period=150.0, inter_period=3000.0, seed=4)
    graph = aggregate_contact_graph(
        (ContactRecord(pair[0], pair[1], start, end)
         for pair, start, end in trace.contacts()), num_nodes=12)
    # drop weak (inter-community) edges, then detect
    strong = nx.Graph()
    strong.add_nodes_from(graph.nodes)
    strong.add_edges_from((u, v, d) for u, v, d in graph.edges(data=True)
                          if d["weight"] >= 5)
    detected = newman_modularity_communities(strong, max_communities=3)
    assignment = CommunityAssignment.from_groups(detected)
    # detected communities must match the ground truth partition
    for a in range(12):
        for b in range(12):
            same_truth = truth[a] == truth[b]
            same_detected = assignment.same_community(a, b)
            assert same_truth == same_detected
