"""Tests for the ``repro.api`` facade, the service layer and the shims.

Covers the PR-9 API contract: the facade exports exactly the blessed
surface, both result types share the ``as_dict()``/``identity_keys()``
convention, the old deep import paths warn-but-work, and the spool-directory
service resolves every cell through the store.
"""

import importlib
import json
import warnings

import pytest

from repro import api
from repro.store import canonical_report_json
from repro.store.service import RunRequest, process_request, serve


def tiny_config(**overrides):
    base = api.ScenarioConfig.bench_scale(protocol="spray-and-wait",
                                          num_nodes=10, sim_time=250.0)
    return base.with_overrides(**overrides) if overrides else base


# -------------------------------------------------------------------- facade
def test_facade_exports_every_blessed_name():
    for name in api.__all__:
        assert hasattr(api, name), name
    for name in ("run", "run_averaged", "sweep", "figure", "open_store",
                 "serve", "ScenarioConfig", "SimulationReport",
                 "AveragedResult", "SweepPoint"):
        assert name in api.__all__


def test_api_run_uses_store_for_dedupe(tmp_path):
    config = tiny_config()
    with api.open_store(str(tmp_path / "r.sqlite")) as store:
        first = api.run(config, store=store)
        assert len(store) == 1
        again = api.run(config, store=store)  # served, not simulated
        assert len(store) == 1
    # NaN-valued extras defeat dict equality; the canonical JSON is the
    # actual byte-identity contract
    assert canonical_report_json(again) == canonical_report_json(first)


def test_api_run_without_store():
    report = api.run(tiny_config())
    assert isinstance(report, api.SimulationReport)


def test_api_sweep_and_figure_share_store(tmp_path):
    config = tiny_config()
    with api.open_store(str(tmp_path / "r.sqlite")) as store:
        points = api.sweep(config, {"message_copies": [4, 8]}, seeds=[1],
                           store=store)
        assert len(points) == 2
        assert len(store) == 2
        again = api.sweep(config, {"message_copies": [4, 8]}, seeds=[1],
                          store=store)
        assert len(store) == 2
    assert [p.as_dict() for p in again] == [p.as_dict() for p in points]


# ------------------------------------------------------- result-type contract
def test_result_types_share_the_contract():
    config = tiny_config()
    result = api.run_averaged(config, seeds=[1, 2])
    [point] = api.sweep(config, {"message_copies": [4]}, seeds=[1, 2])
    for value in (result, point):
        assert json.loads(json.dumps(value.as_dict())) == value.as_dict()
        keys = value.identity_keys()
        assert len(keys) == 2  # one per seed
        for key in keys:
            scenario, protocol, seed, config_hash = key
            assert isinstance(scenario, str) and isinstance(protocol, str)
            assert isinstance(seed, int)
            assert len(config_hash) == 64
    assert point.as_dict()["summary"]["protocol"] == "spray-and-wait"


def test_identity_keys_empty_without_config():
    result = api.AveragedResult(protocol="eer", num_nodes=4, seeds=[1],
                                reports=[])
    assert result.identity_keys() == []


# ---------------------------------------------------------- deprecation shims
def test_runner_averaged_result_shim_warns():
    runner = importlib.import_module("repro.experiments.runner")
    with pytest.warns(DeprecationWarning, match="AveragedResult"):
        shimmed = runner.AveragedResult
    assert shimmed is api.AveragedResult


def test_sweep_point_shim_warns():
    # NB: `from repro.experiments import sweep` yields the *function* (the
    # package re-export wins); importlib returns the true module
    sweep_module = importlib.import_module("repro.experiments.sweep")
    with pytest.warns(DeprecationWarning, match="SweepPoint"):
        shimmed = sweep_module.SweepPoint
    assert shimmed is api.SweepPoint


def test_blessed_paths_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.experiments import AveragedResult, SweepPoint  # noqa: F401
        from repro.experiments.results import (  # noqa: F401
            AveragedResult as A2,
            SweepPoint as S2,
        )


# -------------------------------------------------------------------- service
def test_run_request_validation():
    request = RunRequest.from_payload(
        {"scenario": "bench", "seeds": [1, 2],
         "grid": {"message_copies": [4, 8]}}, request_id="r1")
    assert request.request_id == "r1"
    assert len(request.cell_configs()) == 2
    with pytest.raises(ValueError):
        RunRequest.from_payload({"seeds": [1]}, request_id="r2")
    with pytest.raises(ValueError):
        RunRequest.from_payload({"scenario": "bench", "bogus": 1},
                                request_id="r3")
    with pytest.raises(ValueError):
        RunRequest.from_payload({"scenario": "bench", "seeds": "1"},
                                request_id="r4")


def test_process_request_resolves_through_store(tmp_path):
    request = RunRequest.from_payload(
        {"scenario": "bench",
         "overrides": {"num_nodes": 10, "sim_time": 250,
                       "protocol": "spray-and-wait"},
         "seeds": [1, 2]}, request_id="r1")
    events = []
    with api.open_store(str(tmp_path / "r.sqlite")) as store:
        first = process_request(request, store, emit=events.append)
        assert first["cells_computed"] == 2 and first["cells_cached"] == 0
        second = process_request(request, store)
        assert second["cells_computed"] == 0 and second["cells_cached"] == 2
    assert second["points"] == first["points"]
    assert all(event["request"] == "r1" for event in events)


def test_serve_once_drains_spool(tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "good.json").write_text(json.dumps(
        {"scenario": "bench",
         "overrides": {"num_nodes": 10, "sim_time": 250,
                       "protocol": "spray-and-wait"},
         "seeds": [1]}))
    (spool / "bad.json").write_text(json.dumps({"no": "scenario"}))
    with api.open_store(str(tmp_path / "r.sqlite")) as store:
        summary = serve(str(spool), store, once=True)
    assert summary == {"requests_done": 1, "requests_failed": 1,
                       "cells_cached": 0, "cells_computed": 1}
    assert (spool / "done" / "good.json").exists()
    result = json.loads((spool / "done" / "good.result.json").read_text())
    assert result["cells_computed"] == 1
    assert (spool / "failed" / "bad.json").exists()
    error = json.loads((spool / "failed" / "bad.error.json").read_text())
    assert "unknown request fields" in error["error"]


def test_serve_requires_existing_spool(tmp_path):
    with api.open_store(str(tmp_path / "r.sqlite")) as store:
        with pytest.raises(ValueError):
            serve(str(tmp_path / "missing"), store, once=True)
        with pytest.raises(ValueError):
            serve(str(tmp_path), store, once=True, poll=0.0)


def test_serve_max_requests_bounds_the_watch_loop(tmp_path):
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "req.json").write_text(json.dumps(
        {"scenario": "bench",
         "overrides": {"num_nodes": 10, "sim_time": 250,
                       "protocol": "spray-and-wait"},
         "seeds": [1]}))
    with api.open_store(str(tmp_path / "r.sqlite")) as store:
        # not --once: the watch loop exits via the request bound instead
        summary = serve(str(spool), store, max_requests=1, poll=0.05)
    assert summary["requests_done"] == 1
