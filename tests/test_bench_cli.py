"""Smoke tests for ``python -m repro bench`` and the regression gate."""

import json

import pytest

from repro import bench
from repro.cli import main


@pytest.fixture(scope="module")
def smoke_payload():
    """One shared smoke-scale bench run (the expensive part)."""
    return bench.run_benchmarks(scale_name="smoke", seed=1)


def test_payload_shape_and_checksums(smoke_payload):
    payload = smoke_payload
    assert payload["schema"] == 1
    assert payload["scale"] == "smoke"
    names = set(payload["benchmarks"])
    assert names == {"encounter_pipeline", "buffer_churn",
                     "collector_ingest", "scenario_eer",
                     "community_detection", "world_tick_10k",
                     "router_sweep", "world_tick_100k", "transfer_churn"}
    for name, entry in payload["benchmarks"].items():
        assert entry["checksums_match"], (
            f"{name}: vectorized path diverged from the reference")
        key = entry["throughput_key"]
        assert entry["baseline"][key] > 0
        assert entry["current"][key] > 0
        assert entry["speedup"] is not None
    # the paired run proves decision-identity end to end
    scenario = payload["benchmarks"]["scenario_eer"]
    assert scenario["baseline"]["checksums"] == scenario["current"]["checksums"]
    # the community pipeline's reference/vectorized aggregation parity,
    # including the bit-exact mean-interval sum and the assignment CRC
    detection = payload["benchmarks"]["community_detection"]
    assert detection["baseline"]["checksums"] == detection["current"]["checksums"]
    assert detection["current"]["checksums"]["edges"] > 0
    assert detection["current"]["checksums"]["communities"] >= 1
    # the sharded world tick must not change a single simulation outcome —
    # the checksum set includes the summed end-of-run position matrix
    world = payload["benchmarks"]["world_tick_10k"]
    assert world["baseline"]["checksums"] == world["current"]["checksums"]
    assert world["current"]["checksums"]["contacts"] > 0
    assert world["current"]["phase_seconds"]["connectivity.detect"] > 0
    # the flattened-tick pair gates whole-tick throughput on the same runs,
    # and its scale section must hold a completed run whose checksums match
    # the serial reference bit for bit
    flat = payload["benchmarks"]["world_tick_100k"]
    assert flat["throughput_key"] == "ticks_per_s"
    assert flat["baseline"]["checksums"] == flat["current"]["checksums"]
    assert flat["baseline"]["routers_skipped"] == 0
    assert flat["current"]["routers_skipped"] > 0
    scale_100k = flat["scale_100k"]
    assert scale_100k["reference_checksums_match"]
    assert scale_100k["current"]["ticks"] > 0
    # the transfers-phase pair: the columnar engine must reproduce every
    # relayed/delivered/aborted record (chained CRCs) and actually move
    # payload through the engine's rows
    churn = payload["benchmarks"]["transfer_churn"]
    assert churn["throughput_key"] == "transfer_bytes_per_s"
    assert churn["baseline"]["checksums"] == churn["current"]["checksums"]
    assert churn["current"]["checksums"]["bytes_delivered"] > 0
    assert churn["current"]["checksums"]["relayed_crc"] != 0
    assert churn["current"]["engine_rows_completed"] > 0
    assert churn["baseline"]["engine_rows_completed"] is None
    # payload is JSON-serialisable as-is
    json.dumps(payload)


def test_compare_to_baseline_gate(smoke_payload):
    assert bench.compare_to_baseline(smoke_payload, smoke_payload) == []
    # a committed baseline with 10x the speedup must trip the gate
    import copy

    inflated = copy.deepcopy(smoke_payload)
    for entry in inflated["benchmarks"].values():
        entry["speedup"] = entry["speedup"] * 10
    failures = bench.compare_to_baseline(smoke_payload, inflated,
                                         max_regression=0.25)
    assert len(failures) == len(smoke_payload["benchmarks"])
    # scale mismatch is refused outright
    wrong_scale = dict(inflated, scale="full")
    assert bench.compare_to_baseline(smoke_payload, wrong_scale) \
        == ["scale mismatch: current 'smoke' vs baseline 'full'"]


def test_cli_bench_writes_and_compares(tmp_path, smoke_payload, monkeypatch,
                                       capsys):
    # stub the heavy run with the shared payload: the CLI wiring is the
    # subject here, not the benchmarks themselves
    monkeypatch.setattr(bench, "run_benchmarks",
                        lambda scale_name, seed: dict(smoke_payload))
    out = tmp_path / "BENCH_test.json"
    assert main(["bench", "--scale", "smoke", "--output", str(out)]) == 0
    written = json.loads(out.read_text())
    assert written["benchmarks"].keys() == smoke_payload["benchmarks"].keys()
    capsys.readouterr()
    # comparing a payload against itself passes the gate
    assert main(["bench", "--scale", "smoke", "--compare", str(out)]) == 0
    captured = capsys.readouterr()
    assert "no regression" in captured.err


def test_cli_bench_fails_on_regression(tmp_path, smoke_payload, monkeypatch,
                                       capsys):
    import copy

    inflated = copy.deepcopy(smoke_payload)
    for entry in inflated["benchmarks"].values():
        entry["speedup"] = entry["speedup"] * 10
    baseline_file = tmp_path / "BENCH_baseline.json"
    bench.write_payload(inflated, str(baseline_file))
    monkeypatch.setattr(bench, "run_benchmarks",
                        lambda scale_name, seed: dict(smoke_payload))
    assert main(["bench", "--scale", "smoke",
                 "--compare", str(baseline_file)]) == 1
    captured = capsys.readouterr()
    assert "regression" in captured.err


def test_unknown_scale_rejected():
    with pytest.raises(KeyError):
        bench.run_benchmarks(scale_name="galactic")


def test_cli_bench_quick_is_a_deprecated_spelling(smoke_payload, monkeypatch,
                                                  capsys):
    seen = {}

    def record(scale_name, seed):
        seen["scale"] = scale_name
        return dict(smoke_payload)

    monkeypatch.setattr(bench, "run_benchmarks", record)
    assert main(["bench", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "deprecated" in captured.err
    assert seen["scale"] == "quick"  # warns, then forwards to --scale quick
    # contradictory spellings are still rejected
    assert main(["bench", "--quick", "--scale", "smoke"]) == 2
    assert "contradicts" in capsys.readouterr().err
