"""The struct-of-arrays router sweep: bit-exactness, counters, fallbacks.

``router_soa=True`` (the default) replaces the per-router skip-scan with one
vectorized evaluation of the same wake predicate plus a batch resolution of
provably no-op updates (``Router.supports_batch_update``).  The contract is
the one every tick-structure change in this repo has carried: **same
decisions, same bytes, just faster**.  Pinned here:

* full-scenario canonical reports are byte-identical SoA-on vs SoA-off for
  all four batch-capable protocols (the PR8 acceptance criterion) and for
  the non-batchable fallbacks (prophet, spray-and-focus);
* hypothesis-generated contact/traffic scripts agree outcome-for-outcome,
  and the counter split obeys ``soa.ticked + soa.batched == skiplist.ticked``
  with identical ``skipped`` — the masks *are* the serial predicate;
* the batched/ticked/skipped counters sum to ``nodes × updates``, surface on
  :class:`SimulationReport` and stay out of the canonical serialisation;
* the store itself: registration order, growth, dirty-buffer mirrors,
  link-count deltas, router rebinds, the non-inherited batch contract, and
  checkpoint/resume of all of it.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import load_checkpoint_bytes, save_checkpoint_bytes
from repro.experiments.catalog import make_scenario
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.net.message import Message
from repro.routing.epidemic import EpidemicRouter
from repro.routing.registry import create_router
from repro.routing.soa import RouterStateStore
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.testing import (
    assert_resume_equality,
    inject_message,
    make_contact_plan,
    make_trace,
)
from repro.traces.replay import build_trace_world

#: the batch-capable protocols (Router.supports_batch_update = True)
BATCHABLE = ["direct", "epidemic", "first-contact", "spray-and-wait"]


# --------------------------------------------------- full-scenario pins
def scenario_payload(protocol, *, router_soa, **overrides):
    config = make_scenario("bench", {
        "mobility": "random_waypoint", "protocol": protocol,
        "num_nodes": 40, "sim_time": 300.0, "router_soa": router_soa,
        "name": f"soa-pin-{protocol}", **overrides})
    return json.dumps(run_scenario(config).as_dict(), sort_keys=True)


@pytest.mark.parametrize("protocol", BATCHABLE)
def test_soa_report_byte_identical_to_skip_scan(protocol):
    """Acceptance pin: SoA on == SoA off, byte for byte, per batchable
    protocol (the canonical payload excludes the mode-dependent counters)."""
    assert scenario_payload(protocol, router_soa=True) \
        == scenario_payload(protocol, router_soa=False)


@pytest.mark.parametrize("protocol", ["prophet", "spray-and-focus"])
def test_soa_report_byte_identical_for_fallback_routers(protocol):
    """Non-batchable routers run the exact per-router loop under SoA:
    prophet opts out of skipping entirely (idle_skip_safe=False) and
    spray-and-focus must not inherit spray-and-wait's batch capability."""
    assert scenario_payload(protocol, router_soa=True) \
        == scenario_payload(protocol, router_soa=False)


# ------------------------------------------------- hypothesis parity
@st.composite
def contact_script(draw):
    """A randomized contact plan plus traffic over a handful of nodes."""
    num_nodes = draw(st.integers(2, 5))
    contacts = draw(st.lists(
        st.tuples(st.integers(0, 20),               # start tick
                  st.integers(1, 8),                # duration in ticks
                  st.integers(0, num_nodes - 1),    # endpoint a
                  st.integers(0, num_nodes - 1)),   # endpoint b
        min_size=1, max_size=12))
    messages = draw(st.lists(
        st.tuples(st.integers(0, num_nodes - 1),    # source
                  st.integers(0, num_nodes - 1),    # destination
                  st.integers(4, 40),               # ttl in ticks
                  st.integers(1, 4)),               # spray copies
        min_size=1, max_size=4))
    return num_nodes, contacts, messages


def run_script(protocol, num_nodes, contacts, messages, *, router_soa):
    plan = make_contact_plan(
        [(float(s), float(s + d), a, b) for s, d, a, b in contacts if a != b])
    simulator, world = build_trace_world(plan, protocol=protocol,
                                         num_nodes=num_nodes,
                                         router_soa=router_soa)
    for index, (source, destination, ttl, copies) in enumerate(messages):
        if source == destination:
            continue
        inject_message(world, source, destination, ttl=float(ttl),
                       copies=copies, message_id=f"M{index}")
    horizon = max(s + d for s, d, _, _ in contacts) + 45.0
    simulator.run(until=horizon)
    return world


def outcome_fingerprint(world):
    """Every observable routing outcome of a finished trace-world run."""
    stats = world.stats
    return (
        stats.created, stats.delivered, stats.relayed, stats.dropped,
        stats.contacts, stats.delivery_ratio, stats.average_latency,
        tuple((r.message_id, r.from_node, r.to_node, r.time)
              for r in stats.relayed_records),
        tuple((r.message_id, r.node, r.time, r.reason)
              for r in stats.dropped_records),
        tuple((node.node_id, tuple(sorted(node.buffer.message_ids())))
              for node in world.nodes),
    )


@pytest.mark.parametrize("protocol", BATCHABLE)
@given(script=contact_script())
@settings(max_examples=25, deadline=None)
def test_hypothesis_outcome_parity(protocol, script):
    num_nodes, contacts, messages = script
    soa = run_script(protocol, num_nodes, contacts, messages,
                     router_soa=True)
    ref = run_script(protocol, num_nodes, contacts, messages,
                     router_soa=False)
    assert outcome_fingerprint(soa) == outcome_fingerprint(ref)
    # the masks ARE the serial predicate: the SoA awake set equals the
    # skip-scan's ticked set (batched rows are the no-op part of it), and
    # the asleep set is untouched
    assert soa.routers_ticked + soa.routers_batched == ref.routers_ticked
    assert soa.routers_skipped == ref.routers_skipped


# ------------------------------------------------- counter semantics
def test_stateless_empty_rows_batch_on_link_events():
    """direct/epidemic resolve empty-buffer link-event ticks in batch — the
    rows the rwp-100k CI smoke counts.  One contact, no traffic: both
    endpoints batch at link-up and link-down, sleep in between."""
    trace = make_trace([(1.0, 0, 1, True), (3.0, 0, 1, False)])
    simulator, world = build_trace_world(trace, protocol="direct",
                                        num_nodes=2)
    simulator.run(until=5.0)
    assert world.routers_ticked == 0
    assert world.routers_batched == 4
    total = world.routers_ticked + world.routers_skipped + world.routers_batched
    assert total == 2 * world.updates
    assert world.stats.routers_batched == world.routers_batched


def test_gated_rows_execute_on_link_events():
    """first-contact's empty-buffer update still consumes per-contact gates
    (is_first_evaluation), so event ticks run through Python."""
    trace = make_trace([(1.0, 0, 1, True), (3.0, 0, 1, False)])
    simulator, world = build_trace_world(trace, protocol="first-contact",
                                        num_nodes=2)
    simulator.run(until=5.0)
    assert world.routers_ticked == 4
    assert world.routers_batched == 0


def test_report_surfaces_counters_outside_canonical_payload():
    config = make_scenario("bench", {
        "mobility": "random_waypoint", "protocol": "direct",
        "num_nodes": 30, "sim_time": 120.0, "name": "soa-counters"})
    report = run_scenario(config)
    assert report.routers_batched > 0          # the CI smoke's assertion
    ticks = report.tick_phase_samples["routers"]
    assert (report.routers_ticked + report.routers_skipped
            + report.routers_batched) == 30 * ticks
    canonical = report.as_dict()
    for key in ("routers_ticked", "routers_skipped", "routers_batched"):
        assert key not in canonical
    timed = report.as_dict(include_timings=True)
    assert timed["routers_batched"] == report.routers_batched
    assert timed["routers_ticked"] == report.routers_ticked
    assert timed["routers_skipped"] == report.routers_skipped


# ------------------------------------------------- the store itself
def test_store_registration_order_growth_and_mirrors():
    simulator, world = build_trace_world(make_trace([]), protocol="epidemic",
                                         num_nodes=100)
    store = world.router_store
    assert len(store) == 100                    # grew past the initial 64
    for row, node in enumerate(world.nodes):
        assert store._row[node.node_id] == row  # registration order
        assert node.buffer._mirror_store is store
        assert node.buffer._mirror_row == row
    assert store._batchable[:100].all()
    assert not store._gated[:100].any()
    assert store._expiry[64:100].max() == float("inf")  # growth defaults
    with pytest.raises(ValueError):
        store.register(world.get_node(0))       # duplicate registration
    store.link_delta(999, 1000, 1)              # unknown ids: no-op


def test_buffer_mutations_mark_rows_dirty():
    simulator, world = build_trace_world(make_trace([]), protocol="epidemic",
                                         num_nodes=2)
    store = world.router_store
    store._dirty.clear()
    node = world.get_node(1)
    node.buffer.add(Message("m-dirty", 1, 0, 500, 0.0, ttl=9.0))
    assert store._dirty == {1}
    store._refresh_dirty()
    assert store._count[1] == 1
    assert store._occupancy[1] == 500
    assert store._expiry[1] == 9.0
    node.buffer.remove("m-dirty")
    store._refresh_dirty()
    assert store._count[1] == 0
    assert store._expiry[1] == float("inf")


def test_link_deltas_track_live_connections():
    trace = make_trace([(1.0, 0, 1, True), (4.0, 0, 1, False)])
    simulator, world = build_trace_world(trace, protocol="epidemic",
                                         num_nodes=3)
    store = world.router_store
    simulator.run(until=2.0)
    assert list(store._conns[:3]) == [1, 1, 0]
    simulator.run(until=5.0)
    assert list(store._conns[:3]) == [0, 0, 0]


def test_rebind_refreshes_router_columns():
    simulator, world = build_trace_world(make_trace([]), protocol="epidemic",
                                         num_nodes=2)
    store = world.router_store
    assert store._batchable[0] and store._idle_safe[0]
    node = world.get_node(0)
    node.router = None
    create_router("prophet").attach(node, world)
    assert not store._batchable[0]
    assert not store._idle_safe[0]              # prophet opts out of skipping
    assert store._fresh[0]


def test_fresh_bit_clears_on_first_executed_update():
    trace = make_trace([(1.0, 0, 1, True)])
    simulator, world = build_trace_world(trace, protocol="first-contact",
                                         num_nodes=2)
    store = world.router_store
    assert store._fresh[:2].all()
    simulator.run(until=2.0)                    # link event ticks both rows
    assert not store._fresh[:2].any()


def test_batch_contract_is_not_inherited():
    """A subclass overriding on_update must never ride its parent's no-op
    proof: supports_batch_update resets unless the subclass redeclares it."""
    assert SprayAndWaitRouter.supports_batch_update
    assert not SprayAndFocusRouter.supports_batch_update

    class Sub(EpidemicRouter):
        pass

    class Declared(EpidemicRouter):
        supports_batch_update = True

    assert not Sub.supports_batch_update
    assert Declared.supports_batch_update


def test_empty_store_sweep_is_a_noop():
    assert len(RouterStateStore()) == 0


# ------------------------------------------------- checkpoint / resume
def test_checkpoint_restores_store_and_buffer_mirrors():
    """A snapshot taken with buffered messages and a live link restores the
    store (rows, counts, mirrors) as ordinary state: the resumed run relays
    and delivers exactly as the uninterrupted one."""
    trace = make_contact_plan([(1.0, 4.0, 0, 1), (6.0, 9.0, 1, 2)])
    simulator, world = build_trace_world(trace, protocol="epidemic",
                                         num_nodes=3)
    inject_message(world, 0, 2, ttl=50.0)
    simulator.run(until=2.0)                    # replica relayed 0 -> 1
    blob = save_checkpoint_bytes(world)
    world.stop()
    restored = load_checkpoint_bytes(blob).world
    store = restored.router_store
    assert store is not None and len(store) == 3
    for node in restored.nodes:
        assert node.buffer._mirror_store is store
        assert store._row[node.node_id] == node.buffer._mirror_row
    restored.simulator.run(until=60.0)
    assert restored.stats.delivered == 1
    restored.stop()


@pytest.mark.parametrize("protocol", ["first-contact", "spray-and-wait"])
def test_resume_equality_with_soa_sweep(protocol):
    """The resume-equality contract holds through the SoA sweep for the
    gated tier (per-contact gate state + fresh bits travel with the
    snapshot)."""
    config = ScenarioConfig.bench_scale(
        protocol=protocol, num_nodes=16, seed=3, sim_time=240.0)
    assert_resume_equality(config, checkpoint_times=[90.0])
