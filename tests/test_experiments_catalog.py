"""Scenario-catalog tests: registry behaviour, trace scenarios end-to-end."""

import json

import pytest

from repro.experiments.builder import build_scenario
from repro.experiments.catalog import (
    ScenarioEntry,
    available_scenarios,
    get_scenario_entry,
    make_scenario,
    register_scenario,
    scenario_entries,
)
from repro.experiments.runner import run_averaged
from repro.experiments.scenario import MobilityKind, ScenarioConfig
from repro.traces.replay import TraceReplayWorld


# -------------------------------------------------------------------- registry
def test_builtin_catalog_has_at_least_six_scenarios():
    names = available_scenarios()
    assert len(names) >= 6
    for expected in ("paper", "bench", "trace-periodic", "trace-csv",
                     "trace-one"):
        assert expected in names


def test_community_workload_entries_registered():
    names = available_scenarios()
    for expected in ("hcmm", "community-sparse", "community-dense",
                     "community-drift", "community-detect"):
        assert expected in names
    assert get_scenario_entry("hcmm").kind == "geometric"
    assert get_scenario_entry("community-drift").kind == "trace"
    # the community beds default to the protocol they exist to exercise
    assert make_scenario("community-detect").protocol == "cr"
    assert make_scenario("hcmm").mobility is MobilityKind.HCMM


def test_community_drift_scenario_builds_with_stale_oracle():
    config = make_scenario("community-drift", sim_time=1_500.0)
    built = build_scenario(config)
    # oracle labels come from the *first epoch* of the drifting trace
    assert [node.community for node in built.world.nodes] \
        == [node_id % config.num_communities
            for node_id in range(config.num_nodes)]
    assert isinstance(built.world, TraceReplayWorld)


def test_entries_describe_shape():
    for entry in scenario_entries():
        description = entry.describe()
        assert description["name"] == entry.name
        assert description["kind"] in ("geometric", "trace")
        assert description["num_nodes"] >= 2
        # descriptions must be JSON-serialisable for the CLI
        json.dumps(description)


def test_trace_entries_are_marked():
    assert get_scenario_entry("trace-periodic").kind == "trace"
    assert get_scenario_entry("bench").kind == "geometric"


def test_make_scenario_applies_overrides_and_router_params():
    config = make_scenario("bench", protocol="cr", num_nodes=60)
    assert config.protocol == "cr"
    assert config.num_nodes == 60
    config = make_scenario("bench", {"router.alpha": 0.5, "sim_time": 100.0})
    assert config.router_params == {"alpha": 0.5}
    assert config.sim_time == 100.0


def test_make_scenario_returns_fresh_configs():
    assert make_scenario("bench") is not make_scenario("bench")


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError) as exc_info:
        get_scenario_entry("nope")
    assert "bench" in str(exc_info.value)


def test_register_scenario_and_duplicate_protection():
    name = "test-only-scenario"
    try:
        entry = register_scenario(
            name, lambda: ScenarioConfig.bench_scale(num_nodes=10),
            summary="registry test", overwrite=True)
        assert isinstance(entry, ScenarioEntry)
        assert make_scenario(name).num_nodes == 10
        with pytest.raises(ValueError):
            register_scenario(name, lambda: ScenarioConfig.bench_scale())
        register_scenario(name, lambda: ScenarioConfig.bench_scale(num_nodes=12),
                          overwrite=True)
        assert make_scenario(name).num_nodes == 12
        with pytest.raises(ValueError):
            register_scenario("bad", "not-callable")
    finally:
        from repro.experiments import catalog
        catalog._SCENARIOS.pop(name, None)


# ------------------------------------------------------------- trace scenarios
def tiny_trace_overrides(**extra):
    overrides = dict(num_nodes=10, sim_time=400.0,
                     message_interval=(30.0, 50.0))
    overrides.update(extra)
    return overrides


def test_generator_trace_scenario_builds_a_replay_world():
    config = make_scenario("trace-periodic", tiny_trace_overrides())
    built = build_scenario(config)
    assert isinstance(built.world, TraceReplayWorld)
    assert built.trace is not None and len(built.trace) > 0
    assert built.world.num_nodes == 10
    built.run()
    assert built.stats.contacts > 0
    assert built.stats.created > 0


def test_community_trace_scenario_carries_ground_truth_communities():
    config = make_scenario("trace-community",
                           tiny_trace_overrides(num_communities=2))
    built = build_scenario(config)
    communities = {built.world.community_of(n) for n in built.world.node_ids()}
    assert communities == {0, 1}


def test_csv_trace_scenario_through_run_averaged():
    # acceptance criterion: a CSV-trace scenario runs end-to-end through
    # run_averaged
    config = make_scenario("trace-csv", protocol="epidemic", sim_time=800.0)
    result = run_averaged(config, seeds=(1, 2))
    assert len(result.reports) == 2
    assert result.mean("delivery_ratio") > 0.0
    assert all(report.contacts > 0 for report in result.reports)


def test_one_and_csv_fixture_scenarios_replay_identically():
    # same contacts on disk in two formats -> identical simulations
    reports = {}
    for name in ("trace-csv", "trace-one"):
        config = make_scenario(name, {"protocol": "epidemic",
                                      "sim_time": 800.0, "name": "fixture"})
        report = run_averaged(config, seeds=(3,)).reports[0]
        reports[name] = json.dumps(report.as_dict(), sort_keys=True)
    assert reports["trace-csv"] == reports["trace-one"]


def test_trace_scenario_serial_process_parity():
    # acceptance criterion: process backend identical to serial
    config = make_scenario("trace-periodic",
                           tiny_trace_overrides(protocol="epidemic"))
    seeds = (1, 2, 3, 4)
    serial = run_averaged(config, seeds, backend="serial")
    parallel = run_averaged(config, seeds, backend="process")
    serial_dicts = [report.as_dict() for report in serial.reports]
    parallel_dicts = [report.as_dict() for report in parallel.reports]
    assert json.dumps(serial_dicts, sort_keys=True) == \
        json.dumps(parallel_dicts, sort_keys=True)


def test_trace_scenario_requires_enough_nodes():
    config = make_scenario("trace-csv", num_nodes=4)
    with pytest.raises(ValueError):
        build_scenario(config)


def test_trace_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(mobility=MobilityKind.TRACE)  # no source
    with pytest.raises(ValueError):
        ScenarioConfig(mobility=MobilityKind.TRACE, trace_path="x",
                       trace_generator="periodic")  # both sources
    with pytest.raises(ValueError):
        ScenarioConfig(trace_generator="periodic")  # trace field, no TRACE
