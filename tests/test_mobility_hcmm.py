"""Tests for the home-cell (caveman/HCMM) mobility model."""

import random

import pytest

from repro.experiments.builder import build_scenario
from repro.experiments.scenario import MobilityKind, ScenarioConfig
from repro.mobility.community import CommunityLayout
from repro.mobility.hcmm import HomeCellMovement

LAYOUT = CommunityLayout(area=(1000.0, 1000.0), num_communities=4)


def in_bounds(point, bounds):
    min_x, min_y, max_x, max_y = bounds
    return min_x <= point[0] <= max_x and min_y <= point[1] <= max_y


def test_validation():
    with pytest.raises(ValueError):
        HomeCellMovement(LAYOUT, 0, roaming_probability=1.5)
    with pytest.raises(ValueError):
        HomeCellMovement(LAYOUT, 0, min_speed=0.0)
    with pytest.raises(ValueError):
        HomeCellMovement(LAYOUT, 0, wait=(5.0, 1.0))
    with pytest.raises(ValueError):
        HomeCellMovement(LAYOUT, 0, rehome_interval=0.0)
    with pytest.raises(ValueError):
        HomeCellMovement(LAYOUT, 99)


def test_no_roaming_stays_in_home_cell():
    rng = random.Random(3)
    model = HomeCellMovement(LAYOUT, 2, roaming_probability=0.0)
    bounds = LAYOUT.district_bounds(2)
    position = model.initial_position(rng)
    assert in_bounds(position, bounds)
    for _ in range(25):
        path = model.next_path(position, 0.0, rng)
        position = path.waypoints[-1]
        assert in_bounds(position, bounds)
    assert model.community == 2


def test_full_roaming_always_leaves_home_cell():
    rng = random.Random(5)
    model = HomeCellMovement(LAYOUT, 1, roaming_probability=1.0)
    position = model.initial_position(rng)
    for _ in range(25):
        path = model.next_path(position, 0.0, rng)
        destination = path.waypoints[-1]
        assert LAYOUT.community_of_point(destination) != 1
        position = destination


def test_rehoming_drifts_membership_but_not_the_oracle_label():
    rng = random.Random(7)
    model = HomeCellMovement(LAYOUT, 0, roaming_probability=0.0,
                             rehome_interval=50.0)
    position = model.initial_position(rng)
    for step in range(60):
        path = model.next_path(position, now=step * 25.0, rng=rng)
        position = path.waypoints[-1]
    assert model.rehomes > 0
    assert model.home_cell != model.initial_home or model.rehomes >= 2
    # the oracle label CR sees is frozen at the initial home
    assert model.community == model.initial_home == 0


def test_static_membership_without_rehome_interval():
    rng = random.Random(9)
    model = HomeCellMovement(LAYOUT, 3, roaming_probability=0.5)
    position = model.initial_position(rng)
    for step in range(40):
        position = model.next_path(position, step * 100.0, rng).waypoints[-1]
    assert model.rehomes == 0
    assert model.home_cell == 3


def test_single_cell_layout_never_roams_or_rehomes():
    layout = CommunityLayout(area=(100.0, 100.0), num_communities=1)
    rng = random.Random(11)
    model = HomeCellMovement(layout, 0, roaming_probability=1.0,
                             rehome_interval=1.0)
    position = model.initial_position(rng)
    for step in range(10):
        position = model.next_path(position, step * 100.0, rng).waypoints[-1]
        assert in_bounds(position, layout.district_bounds(0))
    assert model.rehomes == 0


# ------------------------------------------------------------------ builder
def test_hcmm_scenario_builds_and_runs():
    config = ScenarioConfig.bench_scale(protocol="epidemic", num_nodes=12) \
        .with_overrides(mobility=MobilityKind.HCMM, sim_time=120.0,
                        roaming_probability=0.2, rehome_interval=300.0)
    built = build_scenario(config)
    for index, node in enumerate(built.world.nodes):
        assert node.community == index % config.num_communities
        assert isinstance(node.follower.model, HomeCellMovement)
    built.run()
    assert built.world.updates > 0


def test_hcmm_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig.bench_scale().with_overrides(roaming_probability=2.0)
    with pytest.raises(ValueError):
        ScenarioConfig.bench_scale().with_overrides(rehome_interval=-5.0)
