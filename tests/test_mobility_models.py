"""Unit tests for the waypoint-style movement models and the path follower."""

import random

import numpy as np
import pytest

from repro.mobility.base import PathFollower
from repro.mobility.community import CommunityLayout, CommunityMovement
from repro.mobility.map_generator import generate_downtown_map
from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.mobility.shortest_path import ShortestPathMapBasedMovement
from repro.mobility.stationary import StationaryMovement


def test_random_waypoint_stays_in_area():
    model = RandomWaypointMovement(area=(100.0, 50.0), min_speed=1.0, max_speed=2.0,
                                   wait=(0.0, 1.0))
    rng = random.Random(3)
    follower = PathFollower(model, rng)
    for _ in range(200):
        pos = follower.move(5.0, 0.0)
        assert 0.0 <= pos[0] <= 100.0
        assert 0.0 <= pos[1] <= 50.0


def test_random_waypoint_validation():
    with pytest.raises(ValueError):
        RandomWaypointMovement(area=(0.0, 10.0))
    with pytest.raises(ValueError):
        RandomWaypointMovement(area=(10.0, 10.0), min_speed=2.0, max_speed=1.0)
    with pytest.raises(ValueError):
        RandomWaypointMovement(area=(10.0, 10.0), wait=(5.0, 1.0))


def test_stationary_never_moves():
    model = StationaryMovement((3.0, 4.0))
    follower = PathFollower(model, random.Random(0))
    start = follower.position.copy()
    for _ in range(10):
        pos = follower.move(10.0, 0.0)
    assert np.allclose(pos, start)
    assert follower.halted


def test_stationary_requires_2d_position():
    with pytest.raises(ValueError):
        StationaryMovement((1.0, 2.0, 3.0))


def test_community_layout_bounds_and_lookup():
    layout = CommunityLayout(area=(100.0, 100.0), num_communities=4)
    assert layout.grid == (2, 2)
    assert layout.district_bounds(0) == (0.0, 0.0, 50.0, 50.0)
    assert layout.district_bounds(3) == (50.0, 50.0, 100.0, 100.0)
    assert layout.community_of_point((10.0, 10.0)) == 0
    assert layout.community_of_point((90.0, 90.0)) == 3
    with pytest.raises(ValueError):
        layout.district_bounds(4)


def test_community_movement_mostly_stays_home():
    layout = CommunityLayout(area=(100.0, 100.0), num_communities=4)
    model = CommunityMovement(layout, community_id=2, local_probability=1.0,
                              min_speed=5.0, max_speed=5.0, wait=(0.0, 0.0))
    rng = random.Random(5)
    follower = PathFollower(model, rng)
    min_x, min_y, max_x, max_y = layout.district_bounds(2)
    for _ in range(100):
        pos = follower.move(3.0, 0.0)
        assert min_x - 1e-6 <= pos[0] <= max_x + 1e-6
        assert min_y - 1e-6 <= pos[1] <= max_y + 1e-6
    assert model.community == 2


def test_community_movement_can_roam_when_not_local():
    layout = CommunityLayout(area=(100.0, 100.0), num_communities=4)
    model = CommunityMovement(layout, community_id=0, local_probability=0.0,
                              min_speed=5.0, max_speed=5.0, wait=(0.0, 0.0))
    rng = random.Random(7)
    follower = PathFollower(model, rng)
    left_home = False
    for _ in range(200):
        pos = follower.move(5.0, 0.0)
        if pos[0] > 50.0 or pos[1] > 50.0:
            left_home = True
    assert left_home


def test_shortest_path_movement_visits_allowed_vertices_only():
    roadmap = generate_downtown_map(width=1200, height=900, spacing=300, seed=1)
    allowed = [0, 1, 2, 3]
    model = ShortestPathMapBasedMovement(roadmap, min_speed=10.0, max_speed=10.0,
                                         wait=(0.0, 0.0), allowed_vertices=allowed)
    rng = random.Random(11)
    position = model.initial_position(rng)
    assert roadmap.nearest_vertex(position) in allowed
    for _ in range(5):
        path = model.next_path(position, 0.0, rng)
        position = path.waypoints[-1]
        assert roadmap.nearest_vertex(position) in allowed


def test_path_follower_requests_next_path_within_one_step():
    # a model returning very short paths: follower must chain them in one move
    class ShortHop(RandomWaypointMovement):
        def next_path(self, position, now, rng):
            path = super().next_path(position, now, rng)
            path.wait_time = 0.0
            return path

    model = ShortHop(area=(5.0, 5.0), min_speed=10.0, max_speed=10.0, wait=(0.0, 0.0))
    follower = PathFollower(model, random.Random(2))
    moved = follower.move(100.0, 0.0)
    assert moved is not None
    assert not follower.halted
