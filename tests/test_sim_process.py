"""Unit tests for periodic processes."""

import pytest

from repro.sim.process import PeriodicProcess


def test_fires_every_interval(simulator):
    times = []
    PeriodicProcess(simulator, 2.0, lambda sim: times.append(sim.now))
    simulator.run(until=10.0)
    assert times == [2.0, 4.0, 6.0, 8.0, 10.0]


def test_explicit_start_time(simulator):
    times = []
    PeriodicProcess(simulator, 5.0, lambda sim: times.append(sim.now), start=1.0)
    simulator.run(until=12.0)
    assert times == [1.0, 6.0, 11.0]


def test_stop_prevents_further_firings(simulator):
    times = []
    process = PeriodicProcess(simulator, 1.0, lambda sim: times.append(sim.now))
    simulator.schedule(3.5, lambda sim: process.stop())
    simulator.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert process.stopped


def test_stop_from_within_callback(simulator):
    times = []

    def callback(sim):
        times.append(sim.now)
        if len(times) == 2:
            process.stop()

    process = PeriodicProcess(simulator, 1.0, callback)
    simulator.run(until=10.0)
    assert times == [1.0, 2.0]


def test_max_firings_cap(simulator):
    times = []
    process = PeriodicProcess(simulator, 1.0, lambda sim: times.append(sim.now),
                              max_firings=3)
    simulator.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert process.stopped
    assert process.firings == 3


def test_invalid_interval_rejected(simulator):
    with pytest.raises(ValueError):
        PeriodicProcess(simulator, 0.0, lambda sim: None)


def test_two_processes_interleave(simulator):
    log = []
    PeriodicProcess(simulator, 2.0, lambda sim: log.append(("a", sim.now)))
    PeriodicProcess(simulator, 3.0, lambda sim: log.append(("b", sim.now)))
    simulator.run(until=6.0)
    # at t=6 both fire; "b"'s occurrence was scheduled earlier (at t=3) so it
    # wins the insertion-order tie-break
    assert log == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0)]
