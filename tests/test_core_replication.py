"""Unit tests for the proportional replica-splitting rule."""

import pytest

from repro.core.replication import split_replicas


def test_proportional_split_floors_peer_share():
    # 10 replicas, weights 1:2 -> peer share floor(10 * 2/3) = 6
    kept, passed = split_replicas(10, weight_self=1.0, weight_peer=2.0)
    assert (kept, passed) == (4, 6)
    assert kept + passed == 10


def test_equal_weights_split_in_half():
    kept, passed = split_replicas(10, 3.0, 3.0)
    assert (kept, passed) == (5, 5)
    kept, passed = split_replicas(9, 3.0, 3.0)
    assert (kept, passed) == (5, 4)  # floor favours the holder


def test_zero_peer_weight_passes_nothing():
    assert split_replicas(8, 5.0, 0.0) == (8, 0)


def test_zero_self_weight_keeps_at_least_one():
    kept, passed = split_replicas(8, 0.0, 5.0)
    assert (kept, passed) == (1, 7)
    kept, passed = split_replicas(8, 0.0, 5.0, keep_at_least_one=False)
    assert (kept, passed) == (0, 8)


def test_both_weights_zero_falls_back_to_binary_split():
    assert split_replicas(10, 0.0, 0.0) == (5, 5)
    assert split_replicas(1, 0.0, 0.0) == (1, 0)


def test_single_replica_is_never_passed_by_splitting():
    assert split_replicas(1, 0.0, 100.0) == (1, 0)


def test_validation():
    with pytest.raises(ValueError):
        split_replicas(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        split_replicas(5, -1.0, 1.0)
    with pytest.raises(ValueError):
        split_replicas(5, 1.0, -1.0)


@pytest.mark.parametrize("total", [1, 2, 3, 7, 10, 25])
@pytest.mark.parametrize("weights", [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0),
                                     (2.5, 7.5), (10.0, 10.0), (1e-9, 1.0)])
def test_conservation_and_bounds(total, weights):
    kept, passed = split_replicas(total, *weights)
    assert kept + passed == total
    assert kept >= 1
    assert passed >= 0
