"""Shared fixtures for the test-suite.

The scenario-building helpers live in :mod:`repro.testing` (so they are
importable without pytest path tricks); this conftest only provides the
pytest fixtures and re-exports the helpers for backwards compatibility.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.testing import (  # noqa: F401  (re-exported for older imports)
    inject_message,
    make_contact_plan,
    make_trace,
    make_world,
)
from repro.traces.contact_trace import ContactTrace


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def two_node_trace() -> ContactTrace:
    """Nodes 0 and 1 meet twice: [10, 50] and [200, 240]."""
    return make_contact_plan([(10.0, 50.0, 0, 1), (200.0, 240.0, 0, 1)])


@pytest.fixture
def chain_trace() -> ContactTrace:
    """A 0-1-2 relay chain: 0 meets 1 early, 1 meets 2 later."""
    return make_contact_plan([(10.0, 60.0, 0, 1), (100.0, 160.0, 1, 2)])
