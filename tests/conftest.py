"""Shared fixtures and helpers for the test-suite.

Most router-level tests run on small, fully deterministic *trace-replay*
worlds: connectivity is prescribed by an explicit contact trace, so the exact
sequence of meetings (and therefore of routing decisions) is known in advance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import pytest

from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.replay import TraceReplayWorld, build_trace_world


def make_trace(events: Iterable[Tuple[float, int, int, bool]]) -> ContactTrace:
    """Build a :class:`ContactTrace` from ``(time, a, b, up)`` tuples."""
    return ContactTrace([ContactEvent(t, a, b, up) for t, a, b, up in events])


def make_contact_plan(contacts: Iterable[Tuple[float, float, int, int]]) -> ContactTrace:
    """Build a trace from ``(start, end, a, b)`` contact intervals."""
    events = []
    for start, end, a, b in contacts:
        events.append(ContactEvent(start, a, b, True))
        events.append(ContactEvent(end, a, b, False))
    return ContactTrace(events)


def make_world(trace: ContactTrace, protocol: str = "epidemic", *,
               num_nodes: Optional[int] = None,
               communities: Optional[Dict[int, int]] = None,
               update_interval: float = 1.0,
               buffer_capacity: float = 10 * 1024 * 1024,
               router_params: Optional[dict] = None,
               seed: int = 1) -> Tuple[Simulator, TraceReplayWorld]:
    """Build a deterministic trace-replay world for router tests."""
    return build_trace_world(
        trace, protocol=protocol, seed=seed, update_interval=update_interval,
        buffer_capacity=buffer_capacity, num_nodes=num_nodes,
        communities=communities, router_params=router_params)


def inject_message(world, source: int, destination: int, *, now: float = 0.0,
                   size: int = 1000, ttl: float = 10_000.0, copies: int = 1,
                   message_id: str = "M1") -> Message:
    """Create and inject one message at *source*; returns the message."""
    message = Message(message_id, source, destination, size, now, ttl, copies,
                      dest_community=world.community_of(destination))
    world.create_message(source, message)
    return message


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def two_node_trace() -> ContactTrace:
    """Nodes 0 and 1 meet twice: [10, 50] and [200, 240]."""
    return make_contact_plan([(10.0, 50.0, 0, 1), (200.0, 240.0, 0, 1)])


@pytest.fixture
def chain_trace() -> ContactTrace:
    """A 0-1-2 relay chain: 0 meets 1 early, 1 meets 2 later."""
    return make_contact_plan([(10.0, 60.0, 0, 1), (100.0, 160.0, 1, 2)])
