"""Unit tests for piecewise-linear paths."""

import numpy as np
import pytest

from repro.mobility.path import Path


def test_single_point_path_is_done_after_wait():
    path = Path([(1.0, 2.0)], speed=1.0, wait_time=5.0)
    assert not path.done
    pos, leftover = path.advance(3.0)
    assert np.allclose(pos, (1.0, 2.0))
    assert leftover == 0.0
    pos, leftover = path.advance(4.0)
    assert path.done
    assert leftover == pytest.approx(2.0)


def test_straight_line_advance():
    path = Path([(0.0, 0.0), (10.0, 0.0)], speed=2.0)
    pos, _ = path.advance(2.0)
    assert np.allclose(pos, (4.0, 0.0))
    pos, leftover = path.advance(3.0)
    assert np.allclose(pos, (10.0, 0.0))
    assert path.done
    assert leftover == pytest.approx(0.0)


def test_multi_segment_advance_crosses_corners():
    path = Path([(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)], speed=1.0)
    assert path.total_length == pytest.approx(7.0)
    pos, _ = path.advance(4.0)
    assert np.allclose(pos, (3.0, 1.0))
    pos, _ = path.advance(3.0)
    assert np.allclose(pos, (3.0, 4.0))
    assert path.done


def test_leftover_time_returned_when_path_finishes():
    path = Path([(0.0, 0.0), (2.0, 0.0)], speed=1.0, wait_time=1.0)
    pos, leftover = path.advance(10.0)
    assert np.allclose(pos, (2.0, 0.0))
    # 2 s of travel + 1 s wait leaves 7 s unused
    assert leftover == pytest.approx(7.0)


def test_duration_matches_advance():
    path = Path([(0.0, 0.0), (6.0, 8.0)], speed=2.0, wait_time=3.0)
    assert path.duration() == pytest.approx(10.0 / 2.0 + 3.0)


def test_validation():
    with pytest.raises(ValueError):
        Path([], speed=1.0)
    with pytest.raises(ValueError):
        Path([(0, 0), (1, 1)], speed=0.0)
    with pytest.raises(ValueError):
        Path([(0, 0)], speed=1.0, wait_time=-1.0)
    with pytest.raises(ValueError):
        Path([(0, 0), (1, 1)], speed=1.0).advance(-0.1)


def test_zero_dt_keeps_position():
    path = Path([(0.0, 0.0), (5.0, 0.0)], speed=1.0)
    path.advance(2.0)
    pos, leftover = path.advance(0.0)
    assert np.allclose(pos, (2.0, 0.0))
    assert leftover == 0.0
