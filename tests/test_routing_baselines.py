"""Unit tests for epidemic, direct-delivery and first-contact routing."""

from repro.testing import inject_message, make_contact_plan, make_world


def test_epidemic_floods_to_every_encounter(chain_trace):
    simulator, world = make_world(chain_trace, protocol="epidemic")
    inject_message(world, source=0, destination=2)
    simulator.run(until=200.0)
    # 0 -> 1 replica, then 1 -> 2 delivery; the source still holds its copy,
    # the relay drops its replica once it has handed it to the destination
    assert world.stats.is_delivered("M1")
    assert world.get_node(0).router.has_message("M1")
    assert not world.get_node(1).router.has_message("M1")
    assert world.stats.relayed == 2


def test_epidemic_does_not_send_to_node_that_already_has_it():
    trace = make_contact_plan([
        (10.0, 30.0, 0, 1),
        (40.0, 60.0, 0, 1),
        (40.0, 60.0, 1, 2),
    ])
    simulator, world = make_world(trace, protocol="epidemic", num_nodes=4)
    inject_message(world, source=0, destination=3)
    simulator.run(until=100.0)
    # 0->1 once, 1->2 once (0 and 1 never re-exchange)
    assert world.stats.relayed == 2


def test_direct_delivery_never_relays(chain_trace):
    simulator, world = make_world(chain_trace, protocol="direct")
    inject_message(world, source=0, destination=2)
    simulator.run(until=300.0)
    # node 0 never meets node 2 in this trace
    assert world.stats.delivered == 0
    assert world.stats.relayed == 0
    assert world.get_node(0).router.has_message("M1")


def test_direct_delivery_on_direct_contact(two_node_trace):
    simulator, world = make_world(two_node_trace, protocol="direct")
    inject_message(world, source=0, destination=1)
    simulator.run(until=60.0)
    assert world.stats.delivered == 1
    assert world.stats.relayed == 1
    assert world.stats.goodput == 1.0


def test_first_contact_forwards_single_copy(chain_trace):
    simulator, world = make_world(chain_trace, protocol="first-contact")
    inject_message(world, source=0, destination=2)
    simulator.run(until=70.0)
    # after the 0-1 contact the copy lives only at node 1
    assert not world.get_node(0).router.has_message("M1")
    assert world.get_node(1).router.has_message("M1")
    simulator.run(until=200.0)
    assert world.stats.is_delivered("M1")
    # exactly two relays: 0->1 and 1->2
    assert world.stats.relayed == 2


def test_first_contact_does_not_duplicate_across_simultaneous_contacts():
    trace = make_contact_plan([
        (10.0, 40.0, 0, 1),
        (10.0, 40.0, 0, 2),
    ])
    simulator, world = make_world(trace, protocol="first-contact", num_nodes=4)
    inject_message(world, source=0, destination=3)
    simulator.run(until=60.0)
    holders = [n for n in (0, 1, 2) if world.get_node(n).router.has_message("M1")]
    assert len(holders) == 1
