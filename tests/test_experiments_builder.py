"""Unit tests for the scenario builder."""

import pytest

from repro.core.cr import CommunityRouter
from repro.core.eer import EERRouter
from repro.experiments.builder import build_scenario
from repro.experiments.scenario import MobilityKind, ScenarioConfig


def tiny_config(**overrides):
    base = ScenarioConfig.bench_scale(num_nodes=12, sim_time=200.0)
    return base.with_overrides(**overrides) if overrides else base


def test_bus_scenario_builds_routes_and_communities():
    built = build_scenario(tiny_config(protocol="cr", num_communities=4))
    assert built.world.num_nodes == 12
    assert built.roadmap is not None
    assert built.routes
    # every node has a community in 0..3 (express buses included)
    communities = {built.world.community_of(n) for n in built.world.node_ids()}
    assert communities <= {0, 1, 2, 3}
    assert all(built.world.community_of(n) is not None for n in built.world.node_ids())
    # routers are the requested protocol with the configured parameters
    assert all(isinstance(node.router, CommunityRouter) for node in built.world.nodes)


def test_router_params_are_forwarded():
    built = build_scenario(tiny_config(protocol="eer",
                                       router_params={"alpha": 0.5}))
    router = built.world.nodes[0].router
    assert isinstance(router, EERRouter)
    assert router.alpha == 0.5


def test_interface_and_buffer_settings_applied():
    built = build_scenario(tiny_config(transmit_range=25.0,
                                       buffer_capacity=512 * 1024))
    node = built.world.nodes[0]
    assert node.interface.transmit_range == 25.0
    assert node.buffer.capacity == 512 * 1024


@pytest.mark.parametrize("mobility", [MobilityKind.COMMUNITY,
                                      MobilityKind.RANDOM_WAYPOINT,
                                      MobilityKind.SHORTEST_PATH])
def test_other_mobility_kinds_build_and_run(mobility):
    built = build_scenario(tiny_config(mobility=mobility, protocol="epidemic",
                                       sim_time=100.0))
    end = built.run()
    assert end == 100.0
    assert built.world.updates > 0


def test_run_produces_traffic_and_contacts():
    built = build_scenario(tiny_config(protocol="epidemic", sim_time=300.0,
                                       message_interval=(20.0, 30.0)))
    built.run()
    assert built.stats.created >= 5
    assert built.traffic.messages_created == built.stats.created


def test_same_seed_reproduces_results():
    def run_once():
        built = build_scenario(tiny_config(protocol="spray-and-wait", seed=5,
                                           sim_time=400.0))
        built.run()
        return (built.stats.created, built.stats.delivered, built.stats.relayed,
                built.stats.contacts)

    assert run_once() == run_once()


def test_different_seed_changes_results():
    def run_once(seed):
        built = build_scenario(tiny_config(protocol="spray-and-wait", seed=seed,
                                           sim_time=400.0))
        built.run()
        return (built.stats.created, built.stats.delivered, built.stats.relayed,
                built.stats.contacts)

    assert run_once(1) != run_once(2)


def test_build_trace_scenario_replays_through_the_world():
    from repro.experiments.scenario import MobilityKind
    from repro.traces.replay import TraceReplayWorld

    config = ScenarioConfig(
        mobility=MobilityKind.TRACE, trace_generator="periodic",
        trace_params={"period_range": (60.0, 120.0)},
        protocol="epidemic", num_nodes=8, sim_time=400.0,
        message_interval=(40.0, 60.0))
    built = build_scenario(config)
    assert isinstance(built.world, TraceReplayWorld)
    assert built.roadmap is None and built.routes is None
    built.run()
    # the replayed contacts and the recorded statistics agree
    assert built.stats.contacts > 0
    assert built.trace is not None
    assert built.stats.contacts <= len(built.trace.contacts())
