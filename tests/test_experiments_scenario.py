"""Unit tests for scenario configuration."""

import pytest

from repro.experiments.scenario import MobilityKind, ScenarioConfig


def test_paper_scale_matches_section_v_settings():
    config = ScenarioConfig.paper_scale(protocol="eer", num_nodes=240)
    assert config.num_nodes == 240
    assert config.sim_time == 10_000.0
    assert config.update_interval == 0.1
    assert config.transmit_range == 10.0
    assert config.transmit_speed == pytest.approx(250_000.0)
    assert config.buffer_capacity == 1024 * 1024
    assert config.message_size == 25 * 1024
    assert config.message_ttl == 20 * 60.0
    assert config.message_copies == 10
    assert config.mobility is MobilityKind.BUS
    assert config.min_speed == 2.7 and config.max_speed == 13.9


def test_bench_scale_is_smaller_but_same_structure():
    paper = ScenarioConfig.paper_scale()
    bench = ScenarioConfig.bench_scale()
    assert bench.sim_time < paper.sim_time
    assert bench.update_interval > paper.update_interval
    assert bench.map_width <= paper.map_width
    assert bench.mobility is MobilityKind.BUS
    assert bench.message_copies == paper.message_copies


def test_overrides_and_with_overrides():
    config = ScenarioConfig.bench_scale(protocol="cr", num_nodes=60, seed=9,
                                        message_copies=6)
    assert config.protocol == "cr"
    assert config.message_copies == 6
    changed = config.with_overrides(num_nodes=120, router_params={"alpha": 0.5})
    assert changed.num_nodes == 120
    assert changed.router_params == {"alpha": 0.5}
    # the original is untouched (dataclasses.replace semantics)
    assert config.num_nodes == 60
    assert config.router_params == {}


def test_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(num_nodes=1)
    with pytest.raises(ValueError):
        ScenarioConfig(sim_time=0)
    with pytest.raises(ValueError):
        ScenarioConfig(update_interval=0)
    with pytest.raises(ValueError):
        ScenarioConfig(message_copies=0)
    with pytest.raises(ValueError):
        ScenarioConfig(num_communities=0)


def test_mobility_accepts_string_values():
    config = ScenarioConfig(mobility="random_waypoint")
    assert config.mobility is MobilityKind.RANDOM_WAYPOINT


def test_effective_traffic_end_defaults_to_sim_time():
    config = ScenarioConfig(sim_time=500.0)
    assert config.effective_traffic_end == 500.0
    explicit = ScenarioConfig(sim_time=500.0, traffic_end=300.0)
    assert explicit.effective_traffic_end == 300.0


def test_trace_mobility_validation():
    config = ScenarioConfig(mobility="trace", trace_generator="periodic")
    assert config.mobility is MobilityKind.TRACE
    with pytest.raises(ValueError):
        ScenarioConfig(mobility="trace")  # needs a trace source
    with pytest.raises(ValueError):
        ScenarioConfig(mobility="trace", trace_path="t.csv",
                       trace_generator="periodic")  # ambiguous source
    with pytest.raises(ValueError):
        ScenarioConfig(trace_path="t.csv")  # trace field without TRACE


def test_apply_overrides_routes_router_params():
    from repro.experiments.scenario import apply_overrides

    config = ScenarioConfig(protocol="eer")
    changed = apply_overrides(config, {"router.alpha": 0.4, "num_nodes": 10})
    assert changed.router_params == {"alpha": 0.4}
    assert changed.num_nodes == 10
    assert config.router_params == {}


def test_traffic_model_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(traffic_model="fractal")
    with pytest.raises(ValueError):
        ScenarioConfig(traffic_model="poisson")  # needs a rate
    with pytest.raises(ValueError):
        ScenarioConfig(traffic_model="bursty", traffic_rate=-1.0)
    with pytest.raises(ValueError):
        # uniform draws from message_interval; a rate would be silently dead
        ScenarioConfig(traffic_model="uniform", traffic_rate=2.0)
    with pytest.raises(ValueError):
        ScenarioConfig(traffic_model="bursty", traffic_rate=1.0,
                       traffic_burst_size=0)
    with pytest.raises(ValueError):
        ScenarioConfig(traffic_model="bursty", traffic_rate=1.0,
                       traffic_burst_spacing=-0.5)
    config = ScenarioConfig(traffic_model="poisson", traffic_rate=2.0)
    assert config.traffic_rate == 2.0


def test_transfer_engine_requires_flat_tick():
    with pytest.raises(ValueError):
        ScenarioConfig(flat_tick=False, router_skiplist=False,
                       router_soa=False, transfer_engine=True)
    config = ScenarioConfig(flat_tick=False, router_skiplist=False,
                            router_soa=False, transfer_engine=False)
    assert config.transfer_engine is False


def test_new_defaults_keep_scenario_identity_stable():
    """The new traffic/transfer fields default to values that drop out of the
    identity payload, so pre-PR10 store keys keep resolving."""
    payload = ScenarioConfig(name="x").identity_payload()
    for field in ("traffic_model", "traffic_rate", "traffic_burst_size",
                  "traffic_burst_spacing", "transfer_engine"):
        assert field not in payload
