"""Execution-backend tests: resolution, ordering, and serial/parallel parity."""

import json

import pytest

from repro.experiments.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.runner import run_averaged, run_many_averaged
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import sweep


def tiny_config(**overrides):
    base = ScenarioConfig.bench_scale(protocol="spray-and-wait", num_nodes=10,
                                      sim_time=200.0)
    return base.with_overrides(**overrides) if overrides else base


def canonical(result) -> str:
    """NaN-stable serialisation of an AveragedResult and its reports."""
    payload = {
        "summary": result.as_dict(),
        "reports": [report.as_dict() for report in result.reports],
    }
    return json.dumps(payload, sort_keys=True)


# ------------------------------------------------------------------ resolution
def test_resolve_backend_names_and_instances():
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    assert isinstance(resolve_backend("process"), ProcessPoolBackend)
    backend = SerialBackend()
    assert resolve_backend(backend) is backend
    with pytest.raises(ValueError):
        resolve_backend("quantum")
    with pytest.raises(TypeError):
        resolve_backend(42)


def test_serial_backend_preserves_order():
    assert SerialBackend().map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]


def test_process_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ProcessPoolBackend(max_workers=0)


def test_process_pool_map_preserves_order():
    with ProcessPoolBackend(max_workers=2) as pool:
        assert pool.map(abs, [-3, 1, -2, 0, 5]) == [3, 1, 2, 0, 5]


# ---------------------------------------------------------------------- parity
def test_process_pool_matches_serial_over_four_seeds():
    """Acceptance criterion: 4-seed run_averaged, process pool == serial."""
    config = tiny_config()
    seeds = [1, 2, 3, 4]
    serial = run_averaged(config, seeds, backend=SerialBackend())
    with ProcessPoolBackend(max_workers=2) as pool:
        parallel = run_averaged(config, seeds, backend=pool)
    assert canonical(serial) == canonical(parallel)
    assert [report.seed for report in parallel.reports] == seeds


def test_sweep_is_backend_invariant():
    grid = {"num_nodes": [8, 12]}
    serial_points = sweep(tiny_config(), grid, seeds=[1, 2])
    with ProcessPoolBackend(max_workers=2) as pool:
        parallel_points = sweep(tiny_config(), grid, seeds=[1, 2], backend=pool)
    assert len(serial_points) == len(parallel_points) == 2
    for a, b in zip(serial_points, parallel_points):
        assert a.overrides == b.overrides
        assert canonical(a.result) == canonical(b.result)


def test_run_many_averaged_groups_configs_in_order():
    configs = [tiny_config(num_nodes=8), tiny_config(num_nodes=12)]
    results = run_many_averaged(configs, seeds=[1, 2])
    assert [r.num_nodes for r in results] == [8, 12]
    for result in results:
        assert [report.seed for report in result.reports] == [1, 2]
        # grouped reports belong to their own config
        assert all(report.num_nodes == result.num_nodes
                   for report in result.reports)


def test_run_many_averaged_requires_seeds():
    with pytest.raises(ValueError):
        run_many_averaged([tiny_config()], seeds=[])


def test_run_many_averaged_closes_backends_it_resolves():
    closed = []

    class Tracking(SerialBackend):
        def close(self):
            closed.append(True)
            super().close()

    import repro.experiments.runner as runner_module
    original = runner_module.resolve_backend

    def tracking_resolve(backend):
        resolved = original(backend)
        return Tracking() if backend is None else resolved

    runner_module.resolve_backend = tracking_resolve
    try:
        run_averaged(tiny_config(), seeds=[1])  # name-resolved: must be closed
    finally:
        runner_module.resolve_backend = original
    assert closed == [True]

    # a caller-owned instance must stay open across calls
    backend = SerialBackend()
    first = run_averaged(tiny_config(), seeds=[1], backend=backend)
    second = run_averaged(tiny_config(), seeds=[1], backend=backend)
    assert canonical(first) == canonical(second)


def test_backend_base_close_is_idempotent():
    class Dummy(ExecutionBackend):
        def map(self, fn, items):
            return [fn(item) for item in items]

    backend = Dummy()
    with backend:
        assert backend.map(str, [1]) == ["1"]
    backend.close()  # second close must be harmless
