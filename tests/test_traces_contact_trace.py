"""Unit tests for contact-trace data model and (de)serialisation."""

import pytest

from repro.metrics.events import ContactRecord
from repro.traces.contact_trace import ContactEvent, ContactTrace


def test_event_validation_and_pair():
    event = ContactEvent(5.0, 3, 1, True)
    assert event.pair == (1, 3)
    with pytest.raises(ValueError):
        ContactEvent(-1.0, 0, 1, True)
    with pytest.raises(ValueError):
        ContactEvent(1.0, 2, 2, True)


def test_line_round_trip():
    event = ContactEvent(12.5, 4, 7, False)
    line = event.to_line()
    assert ContactEvent.from_line(line) == event
    with pytest.raises(ValueError):
        ContactEvent.from_line("garbage line")
    with pytest.raises(ValueError):
        ContactEvent.from_line("1.0 CONN 0 1 sideways")


def test_trace_orders_events_and_lists_nodes():
    trace = ContactTrace([
        ContactEvent(50.0, 0, 1, False),
        ContactEvent(10.0, 0, 1, True),
        ContactEvent(20.0, 2, 3, True),
    ])
    assert [e.time for e in trace] == [10.0, 20.0, 50.0]
    assert trace.node_ids() == [0, 1, 2, 3]
    assert trace.duration() == 50.0
    assert len(trace) == 3


def test_contacts_pairs_up_and_down_events():
    trace = ContactTrace([
        ContactEvent(10.0, 0, 1, True),
        ContactEvent(30.0, 0, 1, False),
        ContactEvent(40.0, 1, 2, True),   # never closed
    ])
    contacts = trace.contacts()
    assert ((0, 1), 10.0, 30.0) in contacts
    assert ((1, 2), 40.0, 40.0) in contacts  # closed at trace duration


def test_active_pairs_at_instant():
    trace = ContactTrace([
        ContactEvent(10.0, 0, 1, True),
        ContactEvent(30.0, 0, 1, False),
        ContactEvent(20.0, 1, 2, True),
    ])
    assert trace.active_pairs(15.0) == {(0, 1)}
    assert trace.active_pairs(25.0) == {(0, 1), (1, 2)}
    assert trace.active_pairs(35.0) == {(1, 2)}


def test_save_and_load_round_trip(tmp_path):
    trace = ContactTrace([
        ContactEvent(10.0, 0, 1, True),
        ContactEvent(30.0, 0, 1, False),
    ])
    path = tmp_path / "trace.txt"
    trace.save(path)
    loaded = ContactTrace.load(path)
    assert loaded.events == trace.events
    # comments and blank lines are tolerated
    path.write_text("# comment\n\n" + "\n".join(e.to_line() for e in trace.events) + "\n")
    assert ContactTrace.load(path).events == trace.events


def test_from_contact_records():
    records = [ContactRecord(0, 1, 5.0, 25.0), ContactRecord(1, 2, 30.0, None)]
    trace = ContactTrace.from_contact_records(records, horizon=100.0)
    assert len(trace) == 4
    assert trace.contacts() == [((0, 1), 5.0, 25.0), ((1, 2), 30.0, 100.0)]


def test_add_keeps_order():
    trace = ContactTrace([ContactEvent(10.0, 0, 1, True)])
    trace.add(ContactEvent(5.0, 2, 3, True))
    assert [e.time for e in trace] == [5.0, 10.0]
