"""Unit tests for bus routes and map-route mobility."""

import random

import numpy as np
import pytest

from repro.mobility.map_generator import assign_districts, generate_downtown_map
from repro.mobility.map_route import (
    BusRoute,
    MapRouteMovement,
    district_hubs,
    generate_bus_routes,
)


@pytest.fixture
def small_map():
    return generate_downtown_map(width=1500, height=1200, spacing=300, seed=4)


def test_bus_route_legs_are_road_paths(small_map):
    stops = [0, small_map.num_vertices - 1, small_map.num_vertices // 2]
    route = BusRoute(small_map, stops, district=1, name="test-line")
    assert route.num_stops == 3
    for index in range(3):
        leg = route.leg(index)
        assert leg[0] == stops[index]
        assert leg[-1] == stops[(index + 1) % 3]
        # consecutive leg vertices are connected by road edges
        for u, v in zip(leg[:-1], leg[1:]):
            assert small_map.edge_length(u, v) > 0
    assert route.total_length() > 0
    assert len(route.stop_coordinates()) == 3


def test_bus_route_validation(small_map):
    with pytest.raises(ValueError):
        BusRoute(small_map, [0])
    with pytest.raises(ValueError):
        BusRoute(small_map, [0, 0])


def test_map_route_movement_cycles_through_stops(small_map):
    route = BusRoute(small_map, [0, 5, 10], district=0)
    movement = MapRouteMovement(route, min_speed=10.0, max_speed=10.0,
                                stop_wait=(0.0, 0.0), start_stop=0)
    rng = random.Random(1)
    position = movement.initial_position(rng)
    assert np.allclose(position, small_map.coordinates(0))
    visited = []
    for _ in range(3):
        path = movement.next_path(position, 0.0, rng)
        position = path.waypoints[-1]
        visited.append(small_map.nearest_vertex(position))
    assert visited == [5, 10, 0]


def test_map_route_movement_positions_stay_on_or_near_roads(small_map):
    route = BusRoute(small_map, [0, 7, 14], district=0)
    movement = MapRouteMovement(route, stop_wait=(0.0, 5.0))
    rng = random.Random(2)
    position = movement.initial_position(rng)
    path = movement.next_path(position, 0.0, rng)
    for _ in range(50):
        position, _ = path.advance(5.0)
    min_x, min_y, max_x, max_y = small_map.bounds()
    assert min_x - 1 <= position[0] <= max_x + 1
    assert min_y - 1 <= position[1] <= max_y + 1


def test_movement_validation(small_map):
    route = BusRoute(small_map, [0, 5])
    with pytest.raises(ValueError):
        MapRouteMovement(route, min_speed=0.0)
    with pytest.raises(ValueError):
        MapRouteMovement(route, min_speed=5.0, max_speed=1.0)
    with pytest.raises(ValueError):
        MapRouteMovement(route, stop_wait=(5.0, 1.0))


def test_generate_bus_routes_structure(small_map):
    districts = assign_districts(small_map, 4)
    routes = generate_bus_routes(small_map, districts, lines_per_district=2,
                                 stops_per_line=4, express_lines=2, seed=7)
    local = [r for r in routes if r.district is not None]
    express = [r for r in routes if r.district is None]
    assert len(local) == 8
    assert len(express) == 2
    assert {r.district for r in local} == {0, 1, 2, 3}
    # local lines stay within their district
    for route in local:
        for stop in route.stops:
            assert districts[stop] == route.district
    # express lines touch several districts
    for route in express:
        touched = {districts[stop] for stop in route.stops}
        assert len(touched) >= 2


def test_hub_routes_share_a_stop_per_district(small_map):
    districts = assign_districts(small_map, 4)
    hubs = district_hubs(small_map, districts)
    routes = generate_bus_routes(small_map, districts, lines_per_district=3,
                                 stops_per_line=4, express_lines=1, seed=7,
                                 use_hubs=True)
    for route in routes:
        if route.district is not None:
            assert hubs[route.district] in route.stops


def test_generate_bus_routes_reproducible(small_map):
    districts = assign_districts(small_map, 4)
    a = generate_bus_routes(small_map, districts, seed=3)
    b = generate_bus_routes(small_map, districts, seed=3)
    assert [r.stops for r in a] == [r.stops for r in b]


def test_generate_bus_routes_validation(small_map):
    districts = assign_districts(small_map, 4)
    with pytest.raises(ValueError):
        generate_bus_routes(small_map, districts, stops_per_line=1)
    with pytest.raises(ValueError):
        generate_bus_routes(small_map, districts, lines_per_district=-1)
