"""Hot-path types must stay slotted.

A ``__dict__`` on :class:`Message`, :class:`Transfer` or the per-event metric
records adds ~100 bytes and a dict allocation per instance — at millions of
events that is the difference between fitting a sweep in RAM or not.  This
test fails the build if someone accidentally drops ``__slots__`` (e.g. by
adding a field to the dataclasses without ``slots=True``).
"""

import pytest

from repro.contacts.history import ContactHistory
from repro.contacts.memd import MemdCache
from repro.metrics.events import (
    ContactRecord,
    MessageCreated,
    MessageDelivered,
    MessageDropped,
    MessageRelayed,
    TransferAborted,
)
from repro.net.connection import Transfer
from repro.net.message import Message

EVENT_INSTANCES = [
    MessageCreated("m", 0, 1, 10, 0.0, 1),
    MessageRelayed("m", 0, 1, 1.0, 1, False),
    MessageDelivered("m", 0, 1, 0.0, 5.0, 2),
    MessageDropped("m", 0, 1.0, "buffer"),
    TransferAborted("m", 0, 1, 1.0, 5.0),
    ContactRecord(0, 1, 0.0, 5.0),
]


@pytest.mark.parametrize("instance", EVENT_INSTANCES,
                         ids=lambda i: type(i).__name__)
def test_metric_event_records_are_slotted(instance):
    assert not hasattr(instance, "__dict__"), (
        f"{type(instance).__name__} grew a __dict__; keep slots=True on the "
        "hot metric record dataclasses")
    assert hasattr(type(instance), "__slots__")


def test_message_is_slotted():
    message = Message("m", 0, 1, 10, 0.0)
    assert not hasattr(message, "__dict__")
    with pytest.raises(AttributeError):
        message.surprise = 1  # type: ignore[attr-defined]


def test_transfer_is_slotted():
    assert "__slots__" in vars(Transfer)
    assert not any("__dict__" in vars(base)
                   for base in Transfer.__mro__ if base is not object)


def test_contact_history_and_memd_cache_are_slotted():
    history = ContactHistory(0)
    assert not hasattr(history, "__dict__")
    cache = MemdCache()
    assert not hasattr(cache, "__dict__")


def test_delivered_record_latency_property_still_works_with_slots():
    record = MessageDelivered("m", 0, 1, 2.0, 7.5, 2)
    assert record.latency == 5.5
