"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so that
legacy installation paths (``python setup.py develop``) keep working in
offline environments that lack the ``wheel`` package required by PEP 660
editable installs.
"""

from setuptools import setup

setup()
